//! The wire protocol: a versioned, length-prefixed binary codec for
//! [`QueryRequest`] / [`QueryResponse`] plus the admin operations
//! (reload, stats, metrics, health, shutdown) that `cpd-server`
//! speaks over TCP.
//!
//! # Frame layout
//!
//! Every frame — request or response — is self-describing:
//!
//! ```text
//! ┌───────────┬─────────┬─────┬──────────────┬───────────────┐
//! │ magic (2) │ ver (1) │ tag │ len u32 (LE) │ payload (len) │
//! └───────────┴─────────┴─────┴──────────────┴───────────────┘
//! ```
//!
//! * **magic** [`WIRE_MAGIC`] — rejects non-CPD peers on the first
//!   frame instead of misparsing garbage;
//! * **version** [`WIRE_VERSION`] — a reader accepts
//!   [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`] (v3 frames decode as
//!   traceless) and refuses anything else by name (mirroring the
//!   model file format's policy in `cpd_core::io`), so protocol
//!   evolution is an explicit error, never silent misdecoding;
//! * **tag** — the frame class (query, reload, stats, shutdown on the
//!   request side; response, reloaded, stats, shutting-down, error on
//!   the response side);
//! * **len** — payload bytes. Frames beyond [`MAX_FRAME_PAYLOAD`] are
//!   rejected **before any allocation**, so a hostile or corrupt length
//!   prefix cannot balloon server memory.
//!
//! Payloads are hand-rolled little-endian primitives (`f64` as raw IEEE
//! bits, so an encode → decode round trip is byte-exact, NaN payloads
//! included; collections length-prefixed with counts validated against
//! the remaining payload before allocating). Decoding is strict: every
//! payload must consume exactly its declared length, unknown variant
//! tags are [`WireError::Malformed`], and a truncated stream is
//! distinguishable from a clean end-of-stream ([`read_request`] /
//! [`read_response`] return `Ok(None)` only at a frame boundary).
//!
//! Malformed frames never kill a connection silently: the server
//! answers with a [`ResponseFrame::Error`] before closing (payload-
//! level garbage after a valid header keeps the stream synchronized, so
//! those connections even survive).

use crate::cache::CacheStats;
use crate::foldin::{FoldInItem, FoldedProfile};
use crate::runtime::{
    ClassStats, HealthState, HealthStatus, NetStats, QueryRequest, QueryResponse, ServeDiagnostics,
};
use cpd_telemetry::{KeepReason, SpanRecord, Trace, TraceContext};
use social_graph::{UserId, WordId};
use std::io::{Read, Write};

/// First two bytes of every frame.
pub const WIRE_MAGIC: [u8; 2] = [0xC9, 0xDF];

/// Protocol version this build speaks.
///
/// * v1 — queries + reload/stats/shutdown admin frames.
/// * v2 — adds the `Metrics` (Prometheus text) and `Health` admin
///   frames, and extends each [`ClassStats`] in a `Stats` reply with
///   histogram-backed p50/p99/p999 microsecond fields. The stats
///   payload layout changed, so v1 peers are refused by name rather
///   than misdecoded.
/// * v3 — overload hardening: `Query` frames carry an optional
///   deadline budget (milliseconds the client is still willing to
///   wait), responses gain the `Overloaded { retry_after_ms }`
///   variant, `Health` replies carry the Ok/Degraded state byte, and
///   `Stats` replies add the shed / deadline-exceeded counters. The
///   query and health payload layouts changed, so v2 peers are
///   refused by name.
/// * v4 — request tracing: `Query` frames carry an optional
///   [`TraceContext`] (trace id, parent span id, sampled flag) after
///   the deadline field, `Response` frames mirror the trace id back,
///   and the `Traces` admin frame pair dumps the server's completed
///   [`Trace`] ring. Uniquely, v4 is **backward compatible on the
///   read side**: the new fields are strictly additive, so a v4
///   reader accepts v3 frames (≥ [`MIN_WIRE_VERSION`]) as traceless
///   and a v4 server answers each connection in the version its peer
///   spoke — stale v3 clients keep working untraced.
pub const WIRE_VERSION: u8 = 4;

/// Oldest frame version a v4 reader still accepts. v3 `Query` frames
/// decode as traceless requests; v3 peers never see trace fields or
/// the (v4-only) `Traces` admin pair in replies.
pub const MIN_WIRE_VERSION: u8 = 3;

/// Hard ceiling on a frame's payload length — anything larger is
/// rejected from the 8-byte header alone, before any payload
/// allocation.
pub const MAX_FRAME_PAYLOAD: u32 = 16 << 20;

/// Bytes in the fixed frame header.
pub const FRAME_HEADER_LEN: usize = 8;

// Request-side frame tags.
const TAG_QUERY: u8 = 0x01;
const TAG_RELOAD: u8 = 0x02;
const TAG_STATS: u8 = 0x03;
const TAG_SHUTDOWN: u8 = 0x04;
const TAG_METRICS: u8 = 0x05;
const TAG_HEALTH: u8 = 0x06;
const TAG_TRACES: u8 = 0x07;
// Response-side frame tags (high bit set).
const TAG_RESPONSE: u8 = 0x81;
const TAG_RELOADED: u8 = 0x82;
const TAG_STATS_REPLY: u8 = 0x83;
const TAG_SHUTTING_DOWN: u8 = 0x84;
const TAG_METRICS_REPLY: u8 = 0x85;
const TAG_HEALTH_REPLY: u8 = 0x86;
const TAG_TRACES_REPLY: u8 = 0x87;
const TAG_ERROR: u8 = 0xFF;

/// A client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestFrame {
    /// One query for the serving pool; consecutive `Query` frames on a
    /// connection are batched into one `submit_batch` call.
    Query {
        /// The query itself.
        request: QueryRequest,
        /// Optional deadline budget: how many more milliseconds the
        /// client is willing to wait for this answer. The server
        /// anchors the budget at decode time and propagates the
        /// resulting deadline into the runtime queue, where an
        /// expired job is dropped as `Overloaded` instead of
        /// executed. `None` = no client-imposed deadline (the
        /// runtime's own `max_queue_wait` still applies).
        deadline_ms: Option<u32>,
        /// Optional trace context (v4): the trace this query belongs
        /// to and the client span it parents under. `None` = untraced
        /// (the server may still head-sample it at its own edge). A
        /// context with `sampled == false` labels the request with a
        /// trace id (for tail sampling and fault logs) without paying
        /// for span recording.
        trace: Option<TraceContext>,
    },
    /// Admin: hot-reload the index from a model snapshot on the
    /// server's filesystem, answered with [`ResponseFrame::Reloaded`].
    Reload {
        /// Path (server-side) of the `cpd-model` snapshot to load.
        path: String,
    },
    /// Admin: fetch the live [`ServeDiagnostics`].
    Stats,
    /// Admin: ask the server to stop accepting connections and drain.
    Shutdown,
    /// Admin: fetch the full metric registry rendered in the
    /// Prometheus text exposition format. Answered inline on the
    /// connection thread — never queued behind the worker pool — so a
    /// scrape succeeds even when the runtime is saturated.
    Metrics,
    /// Admin: liveness/readiness probe, answered inline like
    /// [`Metrics`](RequestFrame::Metrics).
    Health,
    /// Admin (v4): fetch the server's completed-trace ring — newest
    /// first, head-sampled and tail-kept traces alike. Answered
    /// inline on the connection thread like
    /// [`Metrics`](RequestFrame::Metrics).
    Traces,
}

/// A server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseFrame {
    /// Answer to one [`RequestFrame::Query`], in request order.
    Response {
        /// The answer itself.
        response: QueryResponse,
        /// The request's trace id mirrored back (v4), so a pipelined
        /// client can correlate each answer with a trace without
        /// relying on slot order alone. Omitted on the wire for v3
        /// peers.
        trace_id: Option<u64>,
    },
    /// A reload landed; the new snapshot generation.
    Reloaded {
        /// Generation of the now-live index.
        generation: u64,
    },
    /// Answer to [`RequestFrame::Stats`]. Boxed: the per-class quantile
    /// fields make [`ServeDiagnostics`] by far the widest payload, and
    /// every other variant would pay its footprint inline.
    Stats(Box<ServeDiagnostics>),
    /// Acknowledges [`RequestFrame::Shutdown`]; the server stops
    /// accepting new connections and drains the existing ones.
    ShuttingDown,
    /// Answer to [`RequestFrame::Metrics`]: the registry rendered as
    /// Prometheus text (UTF-8).
    Metrics(String),
    /// Answer to [`RequestFrame::Health`].
    Health(HealthStatus),
    /// Answer to [`RequestFrame::Traces`] (v4): the completed-trace
    /// ring, newest first.
    Traces(Vec<Trace>),
    /// A frame-level failure: the offending frame could not be decoded
    /// (or an admin operation failed). Query-level validation errors
    /// travel inside [`QueryResponse::Error`] instead.
    Error(String),
}

/// Decode-side failures.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The bytes are not a valid frame (bad magic, unknown version or
    /// tag, truncated or trailing payload bytes, …).
    Malformed(String),
    /// The header declared a payload larger than [`MAX_FRAME_PAYLOAD`];
    /// nothing was allocated.
    Oversized {
        /// Declared payload length.
        len: u32,
    },
    /// The transport's read timeout expired. `mid_frame` is the
    /// severity split: `false` means the stream timed out **between**
    /// frames (an idle peer — harmless, the stream is still
    /// synchronized and the caller may keep waiting), `true` means it
    /// expired with a frame partially read (a half-dead or slow-loris
    /// peer — the stream is desynchronized and must be closed).
    Timeout {
        /// Whether the deadline expired inside a frame.
        mid_frame: bool,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire io error: {e}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::Oversized { len } => write!(
                f,
                "oversized frame: payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD} limit"
            ),
            WireError::Timeout { mid_frame: true } => {
                write!(f, "read timed out mid-frame (half-dead peer)")
            }
            WireError::Timeout { mid_frame: false } => {
                write!(f, "read timed out between frames (idle peer)")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Payload writer: plain little-endian pushes into a `Vec`.
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, x: u8) {
        self.0.push(x);
    }
    fn u32(&mut self, x: u32) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }
    fn u64(&mut self, x: u64) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }
    fn f64(&mut self, x: f64) {
        self.0.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    fn words(&mut self, ws: &[WordId]) {
        self.u32(ws.len() as u32);
        for w in ws {
            self.u32(w.0);
        }
    }
    fn users(&mut self, us: &[UserId]) {
        self.u32(us.len() as u32);
        for u in us {
            self.u32(u.0);
        }
    }
    fn f64s(&mut self, xs: &[f64]) {
        self.u32(xs.len() as u32);
        for &x in xs {
            self.f64(x);
        }
    }
    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn class(&mut self, c: &ClassStats) {
        self.u64(c.queries);
        self.f64(c.seconds);
        self.f64(c.p50_micros);
        self.f64(c.p99_micros);
        self.f64(c.p999_micros);
    }
    fn trace_ctx(&mut self, t: &Option<TraceContext>) {
        match t {
            Some(ctx) => {
                self.u8(1);
                self.u64(ctx.trace_id);
                self.u64(ctx.parent_span);
                self.u8(ctx.sampled as u8);
            }
            None => self.u8(0),
        }
    }
    fn trace(&mut self, t: &Trace) {
        self.u64(t.trace_id);
        self.u8(t.keep.as_u8());
        self.u64(t.duration_nanos);
        self.u64(t.dropped_spans);
        self.u32(t.spans.len() as u32);
        for s in &t.spans {
            self.u64(s.id);
            self.u64(s.parent);
            self.string(&s.name);
            self.u64(s.start_nanos);
            self.u64(s.end_nanos);
        }
    }
}

fn encode_query(e: &mut Enc, q: &QueryRequest) {
    match q {
        QueryRequest::RankCommunities { query } => {
            e.u8(0);
            e.words(query);
        }
        QueryRequest::QueryTopics { query } => {
            e.u8(1);
            e.words(query);
        }
        QueryRequest::TopWords { topic, k } => {
            e.u8(2);
            e.u64(*topic as u64);
            e.u64(*k as u64);
        }
        QueryRequest::CommunityTopics { community, k } => {
            e.u8(3);
            e.u64(*community as u64);
            e.u64(*k as u64);
        }
        QueryRequest::PairTopics { from, to, k } => {
            e.u8(4);
            e.u64(*from as u64);
            e.u64(*to as u64);
            e.u64(*k as u64);
        }
        QueryRequest::UserProfile { user } => {
            e.u8(5);
            e.u32(user.0);
        }
        QueryRequest::FriendshipScore { u, v } => {
            e.u8(6);
            e.u32(u.0);
            e.u32(v.0);
        }
        QueryRequest::DiffusionScore { u, v, words, at } => {
            e.u8(7);
            e.u32(u.0);
            e.u32(v.0);
            e.words(words);
            e.u32(*at);
        }
        QueryRequest::FoldIn { item, seed } => {
            e.u8(8);
            e.u32(item.docs.len() as u32);
            for doc in &item.docs {
                e.words(doc);
            }
            e.users(&item.friends);
            e.u64(*seed);
        }
    }
}

fn encode_response_payload(e: &mut Enc, r: &QueryResponse) {
    match r {
        QueryResponse::Ranking(pairs) => {
            e.u8(0);
            e.u32(pairs.len() as u32);
            for &(id, score) in pairs {
                e.u64(id as u64);
                e.f64(score);
            }
        }
        QueryResponse::Profile {
            membership,
            dominant,
        } => {
            e.u8(1);
            e.f64s(membership);
            e.u64(*dominant as u64);
        }
        QueryResponse::Score(s) => {
            e.u8(2);
            e.f64(*s);
        }
        QueryResponse::FoldedIn(p) => {
            e.u8(3);
            e.f64s(&p.membership);
            e.f64s(&p.topics);
            e.u32(p.doc_topics.len() as u32);
            for row in &p.doc_topics {
                e.f64s(row);
            }
        }
        QueryResponse::Error(msg) => {
            e.u8(4);
            e.string(msg);
        }
        QueryResponse::Overloaded { retry_after_ms } => {
            e.u8(5);
            e.u64(*retry_after_ms);
        }
    }
}

fn encode_diagnostics(e: &mut Enc, d: &ServeDiagnostics) {
    e.u64(d.workers as u64);
    e.u64(d.batches);
    e.u64(d.generation);
    e.u64(d.queue_high_water);
    e.u64(d.shed);
    e.u64(d.deadline_exceeded);
    e.u64(d.cache.hits);
    e.u64(d.cache.misses);
    e.u64(d.cache.evictions);
    e.u64(d.cache.entries);
    e.u64(d.net.connections);
    e.u64(d.net.frames_in);
    e.u64(d.net.frames_out);
    e.class(&d.ranking);
    e.class(&d.top_words);
    e.class(&d.profile);
    e.class(&d.fold_in);
    e.class(&d.link_score);
}

fn frame_versioned(version: u8, tag: u8, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(version);
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Serialize a request frame (header + payload) at [`WIRE_VERSION`].
pub fn encode_request(req: &RequestFrame) -> Vec<u8> {
    encode_request_versioned(req, WIRE_VERSION)
}

/// Serialize a request frame at an explicit protocol version (within
/// [`MIN_WIRE_VERSION`]..=[`WIRE_VERSION`]) — how the interop tests
/// speak like a stale v3 client. A v3 frame simply omits the trace
/// field; the (v4-only) `Traces` admin frame cannot be expressed at
/// v3 and panics, as does an out-of-range version (programmer error,
/// not wire input).
pub fn encode_request_versioned(req: &RequestFrame, version: u8) -> Vec<u8> {
    assert!(
        (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version),
        "cannot encode wire version {version} (this build speaks {MIN_WIRE_VERSION}..={WIRE_VERSION})"
    );
    let mut e = Enc(Vec::new());
    let tag = match req {
        RequestFrame::Query {
            request,
            deadline_ms,
            trace,
        } => {
            // Deadline budget first, so the server can anchor it
            // before touching the (arbitrarily large) query payload.
            match deadline_ms {
                Some(ms) => {
                    e.u8(1);
                    e.u32(*ms);
                }
                None => e.u8(0),
            }
            // Trace context second (v4+): still ahead of the query
            // payload so the edge can adopt the trace before the
            // decode span's bulk work.
            if version >= 4 {
                e.trace_ctx(trace);
            }
            encode_query(&mut e, request);
            TAG_QUERY
        }
        RequestFrame::Reload { path } => {
            e.string(path);
            TAG_RELOAD
        }
        RequestFrame::Stats => TAG_STATS,
        RequestFrame::Shutdown => TAG_SHUTDOWN,
        RequestFrame::Metrics => TAG_METRICS,
        RequestFrame::Health => TAG_HEALTH,
        RequestFrame::Traces => {
            assert!(version >= 4, "the Traces admin frame requires wire v4");
            TAG_TRACES
        }
    };
    frame_versioned(version, tag, e.0)
}

/// Serialize a response frame (header + payload) at [`WIRE_VERSION`].
/// A payload that would exceed [`MAX_FRAME_PAYLOAD`] (possible for
/// pathological fold-in responses: the request limit does not bound
/// the response size) is replaced by an in-band
/// [`ResponseFrame::Error`] — the stream stays framed and the peer
/// gets a typed failure instead of a frame its own reader must reject
/// (or, past `u32`, a silently corrupt length prefix).
pub fn encode_response(resp: &ResponseFrame) -> Vec<u8> {
    encode_response_versioned(resp, WIRE_VERSION)
}

/// Serialize a response frame at an explicit protocol version — the
/// server answers each connection in the version its peer spoke, so a
/// stale v3 client receives v3 frames (trace mirror omitted). Panics
/// on an out-of-range version or a v4-only `Traces` reply forced to
/// v3 (both programmer errors: a v3 peer cannot have sent the
/// `Traces` request).
pub fn encode_response_versioned(resp: &ResponseFrame, version: u8) -> Vec<u8> {
    assert!(
        (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version),
        "cannot encode wire version {version} (this build speaks {MIN_WIRE_VERSION}..={WIRE_VERSION})"
    );
    let mut e = Enc(Vec::new());
    let tag = match resp {
        ResponseFrame::Response { response, trace_id } => {
            if version >= 4 {
                match trace_id {
                    Some(id) => {
                        e.u8(1);
                        e.u64(*id);
                    }
                    None => e.u8(0),
                }
            }
            encode_response_payload(&mut e, response);
            TAG_RESPONSE
        }
        ResponseFrame::Reloaded { generation } => {
            e.u64(*generation);
            TAG_RELOADED
        }
        ResponseFrame::Stats(d) => {
            encode_diagnostics(&mut e, d);
            TAG_STATS_REPLY
        }
        ResponseFrame::ShuttingDown => TAG_SHUTTING_DOWN,
        ResponseFrame::Metrics(text) => {
            e.string(text);
            TAG_METRICS_REPLY
        }
        ResponseFrame::Health(h) => {
            e.u8(h.ready as u8);
            e.u8(h.live as u8);
            e.u8(match h.state {
                HealthState::Ok => 0,
                HealthState::Degraded => 1,
            });
            e.u64(h.generation);
            e.f64(h.uptime_seconds);
            TAG_HEALTH_REPLY
        }
        ResponseFrame::Traces(traces) => {
            assert!(version >= 4, "the Traces reply requires wire v4");
            e.u32(traces.len() as u32);
            for t in traces {
                e.trace(t);
            }
            TAG_TRACES_REPLY
        }
        ResponseFrame::Error(msg) => {
            e.string(msg);
            TAG_ERROR
        }
    };
    if e.0.len() > MAX_FRAME_PAYLOAD as usize {
        let mut err = Enc(Vec::new());
        err.string(&format!(
            "response of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte frame limit",
            e.0.len()
        ));
        return frame_versioned(version, TAG_ERROR, err.0);
    }
    frame_versioned(version, tag, e.0)
}

/// Write one request frame. Refuses (without writing) a request whose
/// payload exceeds [`MAX_FRAME_PAYLOAD`] — the server would reject the
/// frame from its header anyway, and past `u32` the length prefix
/// would silently wrap and desynchronize the stream.
pub fn write_request<W: Write>(w: &mut W, req: &RequestFrame) -> std::io::Result<()> {
    let bytes = encode_request(req);
    if bytes.len() - FRAME_HEADER_LEN > MAX_FRAME_PAYLOAD as usize {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "request payload of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte frame limit",
                bytes.len() - FRAME_HEADER_LEN
            ),
        ));
    }
    w.write_all(&bytes)
}

/// Write one response frame at [`WIRE_VERSION`].
pub fn write_response<W: Write>(w: &mut W, resp: &ResponseFrame) -> std::io::Result<()> {
    w.write_all(&encode_response(resp))
}

/// Write one response frame at an explicit peer version (see
/// [`encode_response_versioned`]).
pub fn write_response_versioned<W: Write>(
    w: &mut W,
    resp: &ResponseFrame,
    version: u8,
) -> std::io::Result<()> {
    w.write_all(&encode_response_versioned(resp, version))
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Strict payload cursor: every read is bounds-checked, and the frame
/// decoders assert full consumption before returning.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Malformed(format!(
                "payload truncated: wanted {n} more bytes, had {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length prefix for elements of at least `elem_size` bytes,
    /// refusing counts the remaining payload cannot possibly hold — so
    /// a corrupt count cannot drive a huge `Vec` pre-allocation.
    fn count(&mut self, elem_size: usize, what: &str) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_size) > self.remaining() {
            return Err(WireError::Malformed(format!(
                "{what} count {n} exceeds the remaining {} payload bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn words(&mut self) -> Result<Vec<WordId>, WireError> {
        let n = self.count(4, "word list")?;
        (0..n).map(|_| Ok(WordId(self.u32()?))).collect()
    }

    fn users(&mut self) -> Result<Vec<UserId>, WireError> {
        let n = self.count(4, "user list")?;
        (0..n).map(|_| Ok(UserId(self.u32()?))).collect()
    }

    fn f64s(&mut self) -> Result<Vec<f64>, WireError> {
        let n = self.count(8, "float row")?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn string(&mut self) -> Result<String, WireError> {
        let n = self.count(1, "string")?;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| WireError::Malformed("string is not valid UTF-8".into()))
    }

    /// A strict boolean byte: anything but 0/1 is malformed (so a
    /// desynchronized stream fails loudly instead of decoding as
    /// `true`).
    fn bool(&mut self, what: &str) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::Malformed(format!("{what} byte {v} is not 0/1"))),
        }
    }

    fn usize(&mut self, what: &str) -> Result<usize, WireError> {
        usize::try_from(self.u64()?)
            .map_err(|_| WireError::Malformed(format!("{what} does not fit in usize")))
    }

    fn class(&mut self) -> Result<ClassStats, WireError> {
        Ok(ClassStats {
            queries: self.u64()?,
            seconds: self.f64()?,
            p50_micros: self.f64()?,
            p99_micros: self.f64()?,
            p999_micros: self.f64()?,
        })
    }

    fn trace_ctx(&mut self) -> Result<Option<TraceContext>, WireError> {
        if !self.bool("trace flag")? {
            return Ok(None);
        }
        Ok(Some(TraceContext {
            trace_id: self.u64()?,
            parent_span: self.u64()?,
            sampled: self.bool("trace sampled flag")?,
        }))
    }

    fn trace(&mut self) -> Result<Trace, WireError> {
        let trace_id = self.u64()?;
        let keep_byte = self.u8()?;
        let keep = KeepReason::from_u8(keep_byte)
            .ok_or_else(|| WireError::Malformed(format!("unknown keep reason {keep_byte}")))?;
        let duration_nanos = self.u64()?;
        let dropped_spans = self.u64()?;
        // Each span is at least 36 bytes (id + parent + name length +
        // start + end), bounding the pre-allocation.
        let n = self.count(36, "span list")?;
        let spans = (0..n)
            .map(|_| {
                Ok(SpanRecord {
                    id: self.u64()?,
                    parent: self.u64()?,
                    name: std::borrow::Cow::Owned(self.string()?),
                    start_nanos: self.u64()?,
                    end_nanos: self.u64()?,
                })
            })
            .collect::<Result<Vec<_>, WireError>>()?;
        Ok(Trace {
            trace_id,
            keep,
            duration_nanos,
            dropped_spans,
            spans,
        })
    }

    fn finish(self, what: &str) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed(format!(
                "{what} payload has {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn decode_query(d: &mut Dec<'_>) -> Result<QueryRequest, WireError> {
    Ok(match d.u8()? {
        0 => QueryRequest::RankCommunities { query: d.words()? },
        1 => QueryRequest::QueryTopics { query: d.words()? },
        2 => QueryRequest::TopWords {
            topic: d.usize("topic")?,
            k: d.usize("k")?,
        },
        3 => QueryRequest::CommunityTopics {
            community: d.usize("community")?,
            k: d.usize("k")?,
        },
        4 => QueryRequest::PairTopics {
            from: d.usize("from")?,
            to: d.usize("to")?,
            k: d.usize("k")?,
        },
        5 => QueryRequest::UserProfile {
            user: UserId(d.u32()?),
        },
        6 => QueryRequest::FriendshipScore {
            u: UserId(d.u32()?),
            v: UserId(d.u32()?),
        },
        7 => QueryRequest::DiffusionScore {
            u: UserId(d.u32()?),
            v: UserId(d.u32()?),
            words: d.words()?,
            at: d.u32()?,
        },
        8 => {
            let n_docs = d.count(4, "document list")?;
            let docs = (0..n_docs)
                .map(|_| d.words())
                .collect::<Result<Vec<_>, _>>()?;
            QueryRequest::FoldIn {
                item: FoldInItem {
                    docs,
                    friends: d.users()?,
                },
                seed: d.u64()?,
            }
        }
        v => return Err(WireError::Malformed(format!("unknown query variant {v}"))),
    })
}

fn decode_response_payload(d: &mut Dec<'_>) -> Result<QueryResponse, WireError> {
    Ok(match d.u8()? {
        0 => {
            let n = d.count(16, "ranking")?;
            let pairs = (0..n)
                .map(|_| Ok((d.usize("ranked id")?, d.f64()?)))
                .collect::<Result<Vec<_>, WireError>>()?;
            QueryResponse::Ranking(pairs)
        }
        1 => QueryResponse::Profile {
            membership: d.f64s()?,
            dominant: d.usize("dominant community")?,
        },
        2 => QueryResponse::Score(d.f64()?),
        3 => {
            let membership = d.f64s()?;
            let topics = d.f64s()?;
            let n_docs = d.count(4, "doc-topic rows")?;
            let doc_topics = (0..n_docs)
                .map(|_| d.f64s())
                .collect::<Result<Vec<_>, _>>()?;
            QueryResponse::FoldedIn(Box::new(FoldedProfile {
                membership,
                topics,
                doc_topics,
            }))
        }
        4 => QueryResponse::Error(d.string()?),
        5 => QueryResponse::Overloaded {
            retry_after_ms: d.u64()?,
        },
        v => {
            return Err(WireError::Malformed(format!(
                "unknown response variant {v}"
            )))
        }
    })
}

fn decode_diagnostics(d: &mut Dec<'_>) -> Result<ServeDiagnostics, WireError> {
    Ok(ServeDiagnostics {
        workers: d.usize("workers")?,
        batches: d.u64()?,
        generation: d.u64()?,
        queue_high_water: d.u64()?,
        shed: d.u64()?,
        deadline_exceeded: d.u64()?,
        cache: CacheStats {
            hits: d.u64()?,
            misses: d.u64()?,
            evictions: d.u64()?,
            entries: d.u64()?,
        },
        net: NetStats {
            connections: d.u64()?,
            frames_in: d.u64()?,
            frames_out: d.u64()?,
        },
        ranking: d.class()?,
        top_words: d.class()?,
        profile: d.class()?,
        fold_in: d.class()?,
        link_score: d.class()?,
    })
}

/// Read one frame header + payload, returning the frame's version
/// alongside its tag. `Ok(None)` = clean end-of-stream (EOF exactly
/// at a frame boundary); EOF anywhere inside a frame is
/// [`WireError::Malformed`]. The payload is allocated only after the
/// length passed the [`MAX_FRAME_PAYLOAD`] check. Versions outside
/// [`MIN_WIRE_VERSION`]..=[`WIRE_VERSION`] are refused by name.
fn read_frame<R: Read>(r: &mut R) -> Result<Option<(u8, u8, Vec<u8>)>, WireError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // First byte by hand so a clean EOF is distinguishable from a
    // truncated header.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // A timeout before the first byte is an *idle* peer: the
            // stream is still at a frame boundary and perfectly
            // usable, so the caller gets the recoverable variant.
            Err(e) if is_timeout(&e) => return Err(WireError::Timeout { mid_frame: false }),
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    header[0] = first[0];
    read_exact_frame(r, &mut header[1..], "frame header")?;
    if header[..2] != WIRE_MAGIC {
        return Err(WireError::Malformed(format!(
            "bad magic {:#04x}{:02x} (not a CPD wire peer?)",
            header[0], header[1]
        )));
    }
    let version = header[2];
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::Malformed(format!(
            "unsupported wire version {version} (this build speaks {MIN_WIRE_VERSION}..={WIRE_VERSION})"
        )));
    }
    let tag = header[3];
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_frame(r, &mut payload, "frame payload")?;
    Ok(Some((version, tag, payload)))
}

/// `true` for the two kinds a socket read deadline surfaces as
/// (`WouldBlock` on Unix, `TimedOut` on Windows).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// `read_exact` that reports truncation as [`WireError::Malformed`]
/// (mid-frame EOF is a protocol violation, not a transport failure)
/// and a read deadline as the mid-frame [`WireError::Timeout`] — the
/// stream is desynchronized either way, so the connection must close.
fn read_exact_frame<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Malformed(format!("{what} truncated"))
        } else if is_timeout(&e) {
            WireError::Timeout { mid_frame: true }
        } else {
            WireError::Io(e)
        }
    })
}

/// Read one request frame (`Ok(None)` = clean end-of-stream),
/// discarding the peer's frame version. Servers that answer in the
/// peer's version use [`read_request_versioned`] instead.
pub fn read_request<R: Read>(r: &mut R) -> Result<Option<RequestFrame>, WireError> {
    Ok(read_request_versioned(r)?.map(|(frame, _)| frame))
}

/// Read one request frame plus the protocol version it was encoded at
/// (`Ok(None)` = clean end-of-stream). A v3 `Query` decodes with
/// `trace: None`; the v4-only `Traces` frame is malformed below v4.
pub fn read_request_versioned<R: Read>(r: &mut R) -> Result<Option<(RequestFrame, u8)>, WireError> {
    let Some((version, tag, payload)) = read_frame(r)? else {
        return Ok(None);
    };
    let mut d = Dec::new(&payload);
    let frame = match tag {
        TAG_QUERY => {
            let deadline_ms = if d.bool("query deadline flag")? {
                Some(d.u32()?)
            } else {
                None
            };
            let trace = if version >= 4 { d.trace_ctx()? } else { None };
            RequestFrame::Query {
                request: decode_query(&mut d)?,
                deadline_ms,
                trace,
            }
        }
        TAG_RELOAD => RequestFrame::Reload { path: d.string()? },
        TAG_STATS => RequestFrame::Stats,
        TAG_SHUTDOWN => RequestFrame::Shutdown,
        TAG_METRICS => RequestFrame::Metrics,
        TAG_HEALTH => RequestFrame::Health,
        TAG_TRACES if version >= 4 => RequestFrame::Traces,
        TAG_TRACES => {
            return Err(WireError::Malformed(format!(
                "the Traces admin frame requires wire v4 (frame spoke v{version})"
            )))
        }
        t => {
            return Err(WireError::Malformed(format!(
                "unknown request frame tag {t:#04x}"
            )))
        }
    };
    d.finish("request")?;
    Ok(Some((frame, version)))
}

/// Read one response frame (`Ok(None)` = clean end-of-stream). A v3
/// `Response` decodes with `trace_id: None`.
pub fn read_response<R: Read>(r: &mut R) -> Result<Option<ResponseFrame>, WireError> {
    let Some((version, tag, payload)) = read_frame(r)? else {
        return Ok(None);
    };
    let mut d = Dec::new(&payload);
    let frame = match tag {
        TAG_RESPONSE => {
            let trace_id = if version >= 4 {
                if d.bool("response trace flag")? {
                    Some(d.u64()?)
                } else {
                    None
                }
            } else {
                None
            };
            ResponseFrame::Response {
                response: decode_response_payload(&mut d)?,
                trace_id,
            }
        }
        TAG_RELOADED => ResponseFrame::Reloaded {
            generation: d.u64()?,
        },
        TAG_STATS_REPLY => ResponseFrame::Stats(Box::new(decode_diagnostics(&mut d)?)),
        TAG_SHUTTING_DOWN => ResponseFrame::ShuttingDown,
        TAG_METRICS_REPLY => ResponseFrame::Metrics(d.string()?),
        TAG_HEALTH_REPLY => {
            let ready = d.bool("health.ready")?;
            let live = d.bool("health.live")?;
            let state = match d.u8()? {
                0 => HealthState::Ok,
                1 => HealthState::Degraded,
                v => {
                    return Err(WireError::Malformed(format!(
                        "unknown health state {v} (0 = Ok, 1 = Degraded)"
                    )))
                }
            };
            ResponseFrame::Health(HealthStatus {
                ready,
                live,
                state,
                generation: d.u64()?,
                uptime_seconds: d.f64()?,
            })
        }
        TAG_TRACES_REPLY if version >= 4 => {
            // A trace is at least 29 payload bytes (id + keep +
            // duration + dropped + span count).
            let n = d.count(29, "trace list")?;
            ResponseFrame::Traces((0..n).map(|_| d.trace()).collect::<Result<Vec<_>, _>>()?)
        }
        TAG_TRACES_REPLY => {
            return Err(WireError::Malformed(format!(
                "the Traces reply requires wire v4 (frame spoke v{version})"
            )))
        }
        TAG_ERROR => ResponseFrame::Error(d.string()?),
        t => {
            return Err(WireError::Malformed(format!(
                "unknown response frame tag {t:#04x}"
            )))
        }
    };
    d.finish("response")?;
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let frames = vec![
            RequestFrame::Query {
                request: QueryRequest::RankCommunities {
                    query: vec![WordId(3), WordId(1)],
                },
                deadline_ms: None,
                trace: None,
            },
            RequestFrame::Query {
                request: QueryRequest::FoldIn {
                    item: FoldInItem {
                        docs: vec![vec![WordId(0)], vec![]],
                        friends: vec![UserId(9)],
                    },
                    seed: u64::MAX,
                },
                deadline_ms: Some(1_500),
                trace: Some(TraceContext {
                    trace_id: 0xDEAD_BEEF,
                    parent_span: 7,
                    sampled: true,
                }),
            },
            RequestFrame::Reload {
                path: "/tmp/model.cpd".into(),
            },
            RequestFrame::Stats,
            RequestFrame::Shutdown,
            RequestFrame::Traces,
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            write_request(&mut bytes, f).unwrap();
        }
        let mut r = &bytes[..];
        for f in &frames {
            let (got, version) = read_request_versioned(&mut r).unwrap().unwrap();
            assert_eq!(&got, f);
            assert_eq!(version, WIRE_VERSION);
        }
        assert!(read_request(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn v3_interop_decodes_traceless_and_replies_traceless() {
        // A stale v3 client's query decodes with `trace: None`…
        let sent = RequestFrame::Query {
            request: QueryRequest::TopWords { topic: 2, k: 5 },
            deadline_ms: Some(250),
            trace: None,
        };
        let bytes = encode_request_versioned(&sent, 3);
        assert_eq!(bytes[2], 3, "header carries the peer's version");
        let (got, version) = read_request_versioned(&mut &bytes[..]).unwrap().unwrap();
        assert_eq!(got, sent);
        assert_eq!(version, 3);

        // …and the v3-encoded reply omits the trace mirror but still
        // decodes on a v4 reader.
        let reply = ResponseFrame::Response {
            response: QueryResponse::Score(0.5),
            trace_id: Some(42),
        };
        let v3 = encode_response_versioned(&reply, 3);
        let v4 = encode_response_versioned(&reply, 4);
        assert!(v3.len() < v4.len(), "v3 frame has no trace mirror");
        match read_response(&mut &v3[..]).unwrap().unwrap() {
            ResponseFrame::Response { trace_id, .. } => assert_eq!(trace_id, None),
            other => panic!("unexpected frame {other:?}"),
        }
        match read_response(&mut &v4[..]).unwrap().unwrap() {
            ResponseFrame::Response { trace_id, .. } => assert_eq!(trace_id, Some(42)),
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn traces_reply_round_trips() {
        let trace = Trace {
            trace_id: 0xC0FFEE,
            keep: KeepReason::Slow,
            duration_nanos: 1_234_567,
            dropped_spans: 1,
            spans: vec![SpanRecord {
                id: 1,
                parent: 0,
                name: std::borrow::Cow::Borrowed("request"),
                start_nanos: 0,
                end_nanos: 1_234_567,
            }],
        };
        let bytes = encode_response(&ResponseFrame::Traces(vec![trace.clone()]));
        match read_response(&mut &bytes[..]).unwrap().unwrap() {
            ResponseFrame::Traces(got) => assert_eq!(got, vec![trace]),
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn out_of_range_versions_are_refused_by_name() {
        for bad in [2u8, WIRE_VERSION + 1] {
            let mut bytes = encode_request(&RequestFrame::Stats);
            bytes[2] = bad;
            let err = read_request(&mut &bytes[..]).unwrap_err();
            assert!(
                matches!(&err, WireError::Malformed(m) if m.contains("unsupported wire version")),
                "{err}"
            );
        }
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        let mut bytes = vec![WIRE_MAGIC[0], WIRE_MAGIC[1], WIRE_VERSION, TAG_QUERY];
        bytes.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        // No payload follows — if the length were trusted, read would
        // try to allocate and fill 16 MiB + 1.
        let err = read_request(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, WireError::Oversized { len } if len == MAX_FRAME_PAYLOAD + 1));
    }

    #[test]
    fn corrupt_count_cannot_force_huge_allocation() {
        // A word list claiming u32::MAX entries inside a 16-byte
        // payload must fail the remaining-bytes check, not allocate.
        let mut e = Enc(Vec::new());
        e.u8(0); // no deadline
        e.u8(0); // no trace context
        e.u8(0); // RankCommunities
        e.u32(u32::MAX);
        e.u32(0);
        e.u32(0);
        let bytes = frame_versioned(WIRE_VERSION, TAG_QUERY, e.0);
        let err = read_request(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, WireError::Malformed(m) if m.contains("count")));
    }
}
