//! Fold-in behaviour: seed determinism, frozen-model invariance, and
//! posterior sanity on a hand-built model whose communities/topics are
//! unambiguous.

use cpd_core::{io::write_model, CpdConfig, CpdModel, Eta};
use cpd_datagen::{generate, GenConfig, Scale};
use cpd_serve::{FoldIn, FoldInConfig, FoldInItem, FoldScratch, ProfileIndex};
use social_graph::{UserId, WordId};

/// Community 0 ⇔ topic 0 ⇔ words {0, 1}; community 1 ⇔ topic 1 ⇔
/// words {3, 4}; word 2 is neutral.
fn separable_model() -> (CpdModel, CpdConfig) {
    let counts = vec![
        10.0, 0.5, 0.5, 0.5, //
        0.5, 0.5, 0.5, 10.0,
    ];
    let model = CpdModel {
        pi: vec![vec![0.95, 0.05], vec![0.05, 0.95], vec![0.5, 0.5]],
        theta: vec![vec![0.9, 0.1], vec![0.1, 0.9]],
        phi: vec![
            vec![0.45, 0.45, 0.06, 0.02, 0.02],
            vec![0.02, 0.02, 0.06, 0.45, 0.45],
        ],
        eta: Eta::from_counts(2, 2, &counts, 0.01),
        nu: vec![0.2; cpd_core::features::N_FEATURES],
        topic_popularity: vec![vec![0.5, 0.5]],
        doc_community: vec![],
        doc_topic: vec![],
    };
    // Small explicit priors, like the synthetic-scale experiment
    // preset: the paper's `50/|C|`-style defaults assume hundreds of
    // documents per user and would swamp a handful of folded-in docs.
    let cfg = CpdConfig {
        rho: Some(0.1),
        alpha: Some(0.2),
        ..CpdConfig::new(2, 2)
    };
    (model, cfg)
}

#[test]
fn fold_in_is_deterministic_by_seed() {
    let (model, cfg) = separable_model();
    let index = ProfileIndex::build(model, &cfg);
    let engine = FoldIn::new(&index, FoldInConfig::default()).unwrap();
    let item = FoldInItem::user(
        vec![vec![WordId(0), WordId(1)], vec![WordId(3), WordId(2)]],
        vec![UserId(0)],
    );
    let mut scratch = FoldScratch::new();
    let a = engine.profile_with_seed(&item, 42, &mut scratch);
    let b = engine.profile_with_seed(&item, 42, &mut scratch);
    assert_eq!(a.membership, b.membership);
    assert_eq!(a.topics, b.topics);
    assert_eq!(a.doc_topics, b.doc_topics);

    // Whole batches are deterministic too.
    let items = vec![item.clone(), FoldInItem::doc(vec![WordId(4)])];
    let batch_a = engine.profile_batch(&items);
    let batch_b = engine.profile_batch(&items);
    for (x, y) in batch_a.iter().zip(&batch_b) {
        assert_eq!(x.membership, y.membership);
        assert_eq!(x.topics, y.topics);
    }

    // A different seed moves the chain (almost surely).
    let c = engine.profile_with_seed(&item, 43, &mut scratch);
    assert!(
        a.membership != c.membership || a.doc_topics != c.doc_topics,
        "different seeds should give different sample paths"
    );
}

#[test]
fn fold_in_recovers_planted_community_and_topic() {
    let (model, cfg) = separable_model();
    let index = ProfileIndex::build(model, &cfg);
    let engine = FoldIn::new(&index, FoldInConfig::default()).unwrap();
    let mut scratch = FoldScratch::new();

    // Pure topic-0 content → community 0, topic 0.
    let p0 = engine.profile_with_seed(
        &FoldInItem::user(vec![vec![WordId(0), WordId(1), WordId(0)]; 3], vec![]),
        7,
        &mut scratch,
    );
    assert_eq!(p0.dominant_community(), 0);
    assert!(p0.topics[0] > 0.8, "topic mixture {:?}", p0.topics);
    assert!(p0.membership[0] > 0.6, "membership {:?}", p0.membership);

    // Pure topic-1 content → community 1, topic 1.
    let p1 = engine.profile_with_seed(
        &FoldInItem::user(vec![vec![WordId(3), WordId(4), WordId(4)]; 3], vec![]),
        7,
        &mut scratch,
    );
    assert_eq!(p1.dominant_community(), 1);
    assert!(p1.topics[1] > 0.8, "topic mixture {:?}", p1.topics);

    // Posteriors are normalised.
    for p in [&p0, &p1] {
        assert!((p.membership.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((p.topics.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for dt in &p.doc_topics {
            assert!((dt.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn friendship_evidence_steers_ambiguous_content() {
    let (model, cfg) = separable_model();
    let index = ProfileIndex::build(model, &cfg);
    let engine = FoldIn::new(&index, FoldInConfig::default()).unwrap();
    let mut scratch = FoldScratch::new();
    // Word 2 is topically neutral; only the friends differ.
    let neutral_docs = vec![vec![WordId(2)]; 2];
    let with_c0_friends = engine.profile_with_seed(
        &FoldInItem::user(neutral_docs.clone(), vec![UserId(0); 4]),
        11,
        &mut scratch,
    );
    let with_c1_friends = engine.profile_with_seed(
        &FoldInItem::user(neutral_docs, vec![UserId(1); 4]),
        11,
        &mut scratch,
    );
    assert!(
        with_c0_friends.membership[0] > with_c1_friends.membership[0],
        "friends in community 0 ({:?}) vs community 1 ({:?})",
        with_c0_friends.membership,
        with_c1_friends.membership
    );
}

#[test]
fn docless_fold_in_still_uses_friendship_evidence() {
    let (model, cfg) = separable_model();
    let index = ProfileIndex::build(model, &cfg);
    let engine = FoldIn::new(&index, FoldInConfig::default()).unwrap();
    let mut scratch = FoldScratch::new();
    // A user known only through links: friends in community 1 must tilt
    // the membership toward 1 (no documents at all).
    let p = engine.profile_with_seed(
        &FoldInItem::user(vec![], vec![UserId(1); 3]),
        1,
        &mut scratch,
    );
    assert!((p.membership.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    assert!(
        p.membership[1] > p.membership[0],
        "membership {:?}",
        p.membership
    );
    // No evidence at all: the uniform prior.
    let empty = engine.profile_with_seed(&FoldInItem::default(), 1, &mut scratch);
    assert_eq!(empty.membership, vec![0.5, 0.5]);
}

#[test]
fn link_scores_flow_through_diffusion_math() {
    let (model, cfg) = separable_model();
    let index = ProfileIndex::build(model.clone(), &cfg);
    let engine = FoldIn::new(&index, FoldInConfig::default()).unwrap();
    let mut scratch = FoldScratch::new();
    let profile = engine.profile_with_seed(
        &FoldInItem::user(vec![vec![WordId(0), WordId(1)]; 3], vec![]),
        5,
        &mut scratch,
    );
    // Friendship: same-community user scores higher than the other one.
    let to_c0 = profile.friendship_score(&index, UserId(0));
    let to_c1 = profile.friendship_score(&index, UserId(1));
    assert!(to_c0 > to_c1, "{to_c0} vs {to_c1}");
    assert_eq!(
        to_c0,
        cpd_core::membership_link_score(&profile.membership, &model.pi[0])
    );

    // "No heterogeneity" ablation: the serve path must mirror
    // `DiffusionPredictor::score` and collapse diffusion scoring to the
    // friendship sigmoid.
    let (model2, cfg2) = separable_model();
    let ablated = ProfileIndex::build(model2.clone(), &cfg2.no_heterogeneity());
    let dummy_graph = {
        use social_graph::{Document, SocialGraphBuilder};
        let mut b = SocialGraphBuilder::new(3, 5);
        b.add_document(Document::new(UserId(0), vec![WordId(0)], 0));
        b.build().unwrap()
    };
    let features = cpd_core::UserFeatures::compute(&dummy_graph);
    let score = profile.diffusion_score(&ablated, &features, UserId(0), &[WordId(0)], 0);
    assert_eq!(
        score,
        cpd_core::membership_link_score(&profile.membership, &model2.pi[0])
    );
}

/// Serving must never write to the trained model: the index's model
/// bytes are identical before and after an arbitrary mix of fold-in
/// and query traffic.
#[test]
fn serving_leaves_the_frozen_model_byte_identical() {
    let (g, _) = generate(&GenConfig::twitter_like(Scale::Tiny));
    let cfg = CpdConfig {
        em_iters: 2,
        gibbs_sweeps: 1,
        nu_iters: 10,
        seed: 3,
        ..CpdConfig::experiment(3, 4)
    };
    let model = cpd_core::Cpd::new(cfg.clone()).unwrap().fit(&g).model;
    let index = ProfileIndex::build(model, &cfg);

    let mut before = Vec::new();
    write_model(index.model(), &mut before).unwrap();

    let engine = FoldIn::new(&index, FoldInConfig::default()).unwrap();
    let items: Vec<FoldInItem> = (0..6)
        .map(|i| {
            FoldInItem::user(
                vec![g.docs()[i].words.clone(), g.docs()[i + 1].words.clone()],
                vec![UserId(i as u32)],
            )
        })
        .collect();
    let profiles = engine.profile_batch(&items);
    assert_eq!(profiles.len(), items.len());
    let _ = index.rank_communities(&[WordId(0), WordId(1)]);
    let _ = index.query_topics(&[WordId(2)]);
    let _ = index.top_words(0, 10);

    let mut after = Vec::new();
    write_model(index.model(), &mut after).unwrap();
    assert_eq!(before, after, "serving mutated the frozen model");
}
