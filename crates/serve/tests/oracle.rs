//! Index-vs-dense oracle: on a fitted generated corpus, every
//! [`ProfileIndex`] query must return the **same answers** as the
//! dense-scan reference implementations in `cpd_core::apps` — same
//! ordering, scores within 1e-12 (in practice bit-identical, because
//! the two paths share one numeric pipeline).

use cpd_core::{query_topics, rank_communities, Cpd, CpdConfig, CpdModel};
use cpd_datagen::{generate, GenConfig, Scale};
use cpd_serve::ProfileIndex;
use social_graph::WordId;

fn fitted() -> (CpdModel, CpdConfig, usize) {
    let (g, _) = generate(&GenConfig::twitter_like(Scale::Tiny));
    let cfg = CpdConfig {
        em_iters: 3,
        gibbs_sweeps: 1,
        nu_iters: 10,
        seed: 99,
        ..CpdConfig::experiment(4, 6)
    };
    let fit = Cpd::new(cfg.clone()).unwrap().fit(&g);
    (fit.model, cfg, g.vocab_size())
}

fn test_queries(vocab: usize) -> Vec<Vec<WordId>> {
    let mut queries: Vec<Vec<WordId>> =
        (0..vocab.min(24)).map(|w| vec![WordId(w as u32)]).collect();
    // Multi-word and repeated-word queries stress the log-affinity
    // accumulation and the log-sum-exp shift.
    queries.push(vec![WordId(0), WordId(1), WordId(2)]);
    queries.push(vec![WordId(3); 5]);
    queries.push(
        (0..vocab.min(40))
            .map(|w| WordId(w as u32))
            .collect::<Vec<_>>(),
    );
    queries
}

fn assert_rankings_match(dense: &[(usize, f64)], indexed: &[(usize, f64)], what: &str) {
    assert_eq!(dense.len(), indexed.len(), "{what}: length");
    for (i, (d, x)) in dense.iter().zip(indexed).enumerate() {
        assert_eq!(d.0, x.0, "{what}: ordering diverged at position {i}");
        assert!(
            (d.1 - x.1).abs() <= 1e-12,
            "{what}: score at position {i}: dense {} vs index {}",
            d.1,
            x.1
        );
    }
}

#[test]
fn index_ranking_matches_dense_scan() {
    let (model, cfg, vocab) = fitted();
    let index = ProfileIndex::build(model.clone(), &cfg);
    for query in test_queries(vocab) {
        assert_rankings_match(
            &rank_communities(&model, &query),
            &index.rank_communities(&query),
            "rank_communities",
        );
        assert_rankings_match(
            &query_topics(&model, &query),
            &index.query_topics(&query),
            "query_topics",
        );
    }
}

#[test]
fn index_top_k_tables_match_dense_sorts() {
    let (model, cfg, _) = fitted();
    let index = ProfileIndex::build_with_top_k(model.clone(), &cfg, 10);
    for z in 0..model.n_topics() {
        for k in [1, 5, 10] {
            assert_eq!(
                index.top_words(z, k),
                model.top_words(z, k),
                "topic {z} k {k}"
            );
        }
        // Beyond the precomputed width: exact dense fallback.
        assert_eq!(index.top_words(z, 25), model.top_words(z, 25));
    }
    for c in 0..model.n_communities() {
        assert_eq!(
            index.top_topics_of_community(c, 6),
            model.top_topics_of_community(c, 6)
        );
        for c2 in 0..model.n_communities() {
            assert_eq!(
                index.pair_top_topics(c, c2, 6),
                model.eta.top_topics(c, c2, 6)
            );
        }
    }
}

#[test]
fn index_link_scores_match_predictor_math() {
    let (model, cfg, _) = fitted();
    let index = ProfileIndex::build(model.clone(), &cfg);
    for (u, v) in [(0u32, 1u32), (2, 3), (5, 0)] {
        let want = cpd_core::membership_link_score(&model.pi[u as usize], &model.pi[v as usize]);
        assert_eq!(
            index.friendship_score(social_graph::UserId(u), social_graph::UserId(v)),
            want
        );
    }
}
