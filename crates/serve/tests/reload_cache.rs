//! Hot-reload and fold-in-cache contracts: a snapshot swap under
//! concurrent query load never mixes generations inside a batch, and
//! the cache returns byte-identical profiles until the generation
//! moves.

use cpd_core::{io::save_model, Cpd, CpdConfig};
use cpd_datagen::{generate, GenConfig, Scale};
use cpd_serve::{
    FoldIn, FoldInItem, FoldScratch, ProfileIndex, QueryRequest, QueryResponse, ServeOptions,
    ServeRuntime,
};
use social_graph::{UserId, WordId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn fit_index(seed: u64) -> (Arc<ProfileIndex>, CpdConfig) {
    let (g, _) = generate(&GenConfig::twitter_like(Scale::Tiny));
    let cfg = CpdConfig {
        em_iters: 2,
        gibbs_sweeps: 1,
        nu_iters: 5,
        seed,
        ..CpdConfig::experiment(3, 4)
    };
    let fit = Cpd::new(cfg.clone()).unwrap().fit(&g);
    (Arc::new(ProfileIndex::build(fit.model, &cfg)), cfg)
}

/// The probe batch: two queries whose answers are both functions of the
/// snapshot, so a mixed-generation batch would be visible.
fn probe_batch() -> Vec<QueryRequest> {
    let q = vec![WordId(0), WordId(1), WordId(2)];
    vec![
        QueryRequest::RankCommunities { query: q.clone() },
        QueryRequest::QueryTopics { query: q },
    ]
}

/// The answers `index` gives to [`probe_batch`].
fn probe_oracle(index: &ProfileIndex) -> Vec<QueryResponse> {
    let q = vec![WordId(0), WordId(1), WordId(2)];
    vec![
        QueryResponse::Ranking(index.rank_communities(&q)),
        QueryResponse::Ranking(index.query_topics(&q)),
    ]
}

#[test]
fn swap_under_concurrent_load_keeps_batches_generation_consistent() {
    let (index_a, _) = fit_index(11);
    let (index_b, _) = fit_index(5040);
    let oracle_a = probe_oracle(&index_a);
    let oracle_b = probe_oracle(&index_b);
    // Different fits must disagree on the probe, or the test is vacuous.
    assert_ne!(oracle_a, oracle_b, "fits too similar to distinguish");

    let runtime = Arc::new(
        ServeRuntime::new(
            Arc::clone(&index_a),
            None,
            ServeOptions {
                workers: 4,
                ..ServeOptions::default()
            },
        )
        .unwrap(),
    );

    // Hammer the runtime from three submitter threads while the swap
    // lands; every batch must equal *one* snapshot's answers in full —
    // a batch straddling the swap finishes on the generation it
    // resolved at submit time.
    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..3)
        .map(|_| {
            let runtime = Arc::clone(&runtime);
            let stop = Arc::clone(&stop);
            let oracle_a = oracle_a.clone();
            let oracle_b = oracle_b.clone();
            std::thread::spawn(move || {
                let mut batches = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let got = runtime.submit_batch(probe_batch());
                    assert!(
                        got == oracle_a || got == oracle_b,
                        "batch answers mixed generations (or matched neither snapshot)"
                    );
                    batches += 1;
                }
                batches
            })
        })
        .collect();

    // Let the hammers run on generation 1, then swap.
    std::thread::sleep(std::time::Duration::from_millis(30));
    assert_eq!(runtime.generation(), 1);
    let generation = runtime.swap_index(Arc::clone(&index_b));
    assert_eq!(generation, 2);
    // Any batch submitted from now on answers on the new snapshot.
    assert_eq!(runtime.submit_batch(probe_batch()), oracle_b);
    std::thread::sleep(std::time::Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    let total: u64 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "hammer threads never got a batch through");

    let d = Arc::try_unwrap(runtime)
        .unwrap_or_else(|_| panic!("all hammers joined"))
        .shutdown();
    assert_eq!(d.generation, 2);
    assert!(d.queue_high_water >= 1, "enqueued jobs must register");
}

#[test]
fn reload_from_snapshot_file_matches_fresh_index() {
    let (index_a, _) = fit_index(7);
    let (index_b, cfg_b) = fit_index(7700);
    let dir = std::env::temp_dir().join("cpd-serve-reload-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("next.cpd");
    save_model(index_b.model(), &path).unwrap();

    let runtime = ServeRuntime::new(index_a, None, ServeOptions::default()).unwrap();
    let generation = runtime.reload(&path).unwrap();
    assert_eq!(generation, 2);
    assert_eq!(runtime.generation(), 2);

    // The reloaded runtime answers like an index built directly from
    // the file (the text format round-trips the rankings; see
    // tests/roundtrip.rs for the exact-vs-1ulp contract on η).
    let reloaded = runtime.index();
    let fresh = ProfileIndex::build(cpd_core::io::load_model(&path).unwrap(), &cfg_b);
    let q = vec![WordId(0), WordId(3)];
    assert_eq!(reloaded.rank_communities(&q), fresh.rank_communities(&q));
    assert_eq!(reloaded.query_topics(&q), fresh.query_topics(&q));
    assert_eq!(reloaded.top_words(0, 8), fresh.top_words(0, 8));

    // A missing file fails loudly — naming the path — and leaves the
    // live snapshot untouched.
    let missing = dir.join("missing.cpd");
    let err = runtime.reload(&missing).unwrap_err();
    assert!(err.contains("missing.cpd"), "{err}");
    assert_eq!(runtime.generation(), 2);

    // A snapshot with a different (|C|, |Z|) shape is rejected — the
    // retained config's priors would be silently wrong for it — and
    // the live generation is untouched.
    let mismatched = dir.join("mismatched.cpd");
    let model = cpd_core::CpdModel {
        pi: vec![vec![0.5, 0.5]],
        theta: vec![vec![0.5, 0.5], vec![0.5, 0.5]],
        phi: vec![vec![0.5, 0.5], vec![0.5, 0.5]],
        eta: cpd_core::Eta::uniform(2, 2),
        nu: vec![0.0; cpd_core::features::N_FEATURES],
        topic_popularity: vec![vec![0.5, 0.5]],
        doc_community: vec![],
        doc_topic: vec![],
    };
    save_model(&model, &mismatched).unwrap();
    let err = runtime.reload(&mismatched).unwrap_err();
    assert!(err.contains("2x2"), "{err}");
    assert!(err.contains("rejected"), "{err}");
    assert_eq!(runtime.generation(), 2);

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&mismatched).ok();
}

#[test]
fn cache_hits_are_byte_identical_to_recompute_and_die_with_the_generation() {
    let (index, _) = fit_index(23);
    let runtime = ServeRuntime::new(
        Arc::clone(&index),
        None,
        ServeOptions {
            workers: 2,
            fold_cache_capacity: 64,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let item = FoldInItem::user(
        vec![vec![WordId(0), WordId(2), WordId(4)], vec![WordId(1)]],
        vec![UserId(0), UserId(3)],
    );
    let request = QueryRequest::FoldIn {
        item: item.clone(),
        seed: 99,
    };

    // Miss, then hit: the cached answer must be byte-for-byte the
    // profile the Gibbs chain produced...
    let first = runtime.submit_batch(vec![request.clone()]);
    let second = runtime.submit_batch(vec![request.clone()]);
    assert_eq!(first, second);
    let d = runtime.diagnostics();
    assert_eq!(d.cache.misses, 1);
    assert_eq!(d.cache.hits, 1);
    assert_eq!(d.cache.entries, 1);

    // ...and equal to a direct engine recompute outside the runtime.
    let engine = FoldIn::new(&index, ServeOptions::default().fold_in).unwrap();
    let direct = engine.profile_with_seed(&item, 99, &mut FoldScratch::new());
    match &first[0] {
        QueryResponse::FoldedIn(p) => assert_eq!(p.as_ref(), &direct),
        other => panic!("unexpected response {other:?}"),
    }

    // A different seed is a different key.
    let other_seed = runtime.submit_batch(vec![QueryRequest::FoldIn {
        item: item.clone(),
        seed: 100,
    }]);
    assert_ne!(first, other_seed);
    assert_eq!(runtime.diagnostics().cache.misses, 2);

    // A snapshot swap (here: to the same model, fresh index) bumps the
    // generation, so the exact same request misses and recomputes —
    // to the same answer, since the model is identical.
    let generation = runtime.swap_index(Arc::new(ProfileIndex::build(
        index.model().clone(),
        index.config(),
    )));
    assert_eq!(generation, 2);
    let after_swap = runtime.submit_batch(vec![request]);
    assert_eq!(after_swap, first, "same model ⇒ same fold-in profile");
    let d = runtime.shutdown();
    assert_eq!(
        d.cache.hits, 1,
        "post-swap request cannot hit gen-1 entries"
    );
    assert_eq!(d.cache.misses, 3);
    assert_eq!(d.fold_in.queries, 4);
}

#[test]
fn zero_capacity_disables_the_cache_entirely() {
    let (index, _) = fit_index(31);
    let runtime = ServeRuntime::new(
        index,
        None,
        ServeOptions {
            workers: 1,
            fold_cache_capacity: 0,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let request = QueryRequest::FoldIn {
        item: FoldInItem::doc(vec![WordId(0), WordId(1)]),
        seed: 5,
    };
    let a = runtime.submit_batch(vec![request.clone()]);
    let b = runtime.submit_batch(vec![request]);
    // Determinism comes from the seed, not the cache.
    assert_eq!(a, b);
    let d = runtime.shutdown();
    assert_eq!(d.cache, cpd_serve::CacheStats::default());
}
