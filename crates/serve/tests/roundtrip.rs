//! The deployment path end to end: fit offline → crash-safe save →
//! load in a fresh "server" → build the index → serve a query batch —
//! and every answer matches an index built from the pre-save model.

use cpd_core::{
    io::{load_model, save_model},
    Cpd, CpdConfig,
};
use cpd_datagen::{generate, GenConfig, Scale};
use cpd_serve::{
    FoldInItem, ProfileIndex, QueryRequest, QueryResponse, ServeOptions, ServeRuntime,
};
use social_graph::{UserId, WordId};
use std::sync::Arc;

#[test]
fn save_load_index_query_round_trip_matches_pre_save_model() {
    let (g, _) = generate(&GenConfig::twitter_like(Scale::Tiny));
    let cfg = CpdConfig {
        em_iters: 3,
        gibbs_sweeps: 1,
        nu_iters: 10,
        seed: 21,
        ..CpdConfig::experiment(4, 6)
    };
    let fit = Cpd::new(cfg.clone()).unwrap().fit(&g);

    // Offline process: snapshot the model.
    let dir = std::env::temp_dir().join("cpd-serve-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.cpd");
    save_model(&fit.model, &path).unwrap();

    // Serving process: load and index. The text format round-trips
    // `π`/`θ`/`φ` bit-exactly; `η` is re-normalised on load (its row
    // sums are 1 ± 1 ulp), so η-backed scores agree to ~1e-16 — well
    // inside the 1e-12 contract, with identical orderings.
    let loaded = load_model(&path).unwrap();
    let index_pre = ProfileIndex::build(fit.model, &cfg);
    let index_post = ProfileIndex::build(loaded, &cfg);

    for w in 0..g.vocab_size().min(12) {
        let q = vec![WordId(w as u32)];
        let (pre, post) = (
            index_pre.rank_communities(&q),
            index_post.rank_communities(&q),
        );
        for (a, b) in pre.iter().zip(&post) {
            assert_eq!(a.0, b.0, "rank order after round trip, word {w}");
            assert!((a.1 - b.1).abs() <= 1e-12, "word {w}: {} vs {}", a.1, b.1);
        }
        // φ-only queries round-trip bit-exactly.
        assert_eq!(index_pre.query_topics(&q), index_post.query_topics(&q));
    }
    for z in 0..index_pre.n_topics() {
        assert_eq!(index_pre.top_words(z, 10), index_post.top_words(z, 10));
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn runtime_batch_answers_match_direct_index_calls() {
    let (g, _) = generate(&GenConfig::twitter_like(Scale::Tiny));
    let cfg = CpdConfig {
        em_iters: 2,
        gibbs_sweeps: 1,
        nu_iters: 10,
        seed: 8,
        ..CpdConfig::experiment(3, 4)
    };
    let fit = Cpd::new(cfg.clone()).unwrap().fit(&g);
    let features = Arc::new(cpd_core::UserFeatures::compute(&g));
    let index = Arc::new(ProfileIndex::build(fit.model, &cfg));
    let runtime = ServeRuntime::new(
        Arc::clone(&index),
        Some(Arc::clone(&features)),
        ServeOptions {
            workers: 4,
            ..ServeOptions::default()
        },
    )
    .unwrap();

    let query = vec![WordId(0), WordId(1)];
    let doc_words = g.docs()[0].words.clone();
    let batch = vec![
        QueryRequest::RankCommunities {
            query: query.clone(),
        },
        QueryRequest::QueryTopics {
            query: query.clone(),
        },
        QueryRequest::TopWords { topic: 1, k: 5 },
        QueryRequest::CommunityTopics { community: 2, k: 3 },
        QueryRequest::PairTopics {
            from: 0,
            to: 1,
            k: 3,
        },
        QueryRequest::UserProfile { user: UserId(3) },
        QueryRequest::FriendshipScore {
            u: UserId(0),
            v: UserId(1),
        },
        QueryRequest::DiffusionScore {
            u: UserId(1),
            v: g.docs()[0].author,
            words: doc_words.clone(),
            at: 0,
        },
        QueryRequest::FoldIn {
            item: FoldInItem::doc(doc_words.clone()),
            seed: 17,
        },
    ];
    let responses = runtime.submit_batch(batch.clone());
    assert_eq!(responses.len(), 9);

    match &responses[0] {
        QueryResponse::Ranking(r) => assert_eq!(r, &index.rank_communities(&query)),
        other => panic!("unexpected response {other:?}"),
    }
    match &responses[1] {
        QueryResponse::Ranking(r) => assert_eq!(r, &index.query_topics(&query)),
        other => panic!("unexpected response {other:?}"),
    }
    match &responses[2] {
        QueryResponse::Ranking(r) => assert_eq!(r, &index.top_words(1, 5)),
        other => panic!("unexpected response {other:?}"),
    }
    match &responses[3] {
        QueryResponse::Ranking(r) => assert_eq!(r, &index.top_topics_of_community(2, 3)),
        other => panic!("unexpected response {other:?}"),
    }
    match &responses[4] {
        QueryResponse::Ranking(r) => assert_eq!(r, &index.pair_top_topics(0, 1, 3)),
        other => panic!("unexpected response {other:?}"),
    }
    match &responses[5] {
        QueryResponse::Profile { membership, .. } => {
            assert_eq!(membership, index.user_membership(UserId(3)))
        }
        other => panic!("unexpected response {other:?}"),
    }
    match &responses[6] {
        QueryResponse::Score(s) => {
            assert_eq!(*s, index.friendship_score(UserId(0), UserId(1)))
        }
        other => panic!("unexpected response {other:?}"),
    }
    match &responses[7] {
        QueryResponse::Score(s) => assert_eq!(
            *s,
            index.diffusion_score(&features, UserId(1), g.docs()[0].author, &doc_words, 0)
        ),
        other => panic!("unexpected response {other:?}"),
    }
    assert!(matches!(&responses[8], QueryResponse::FoldedIn(_)));

    // Per-request seeds make fold-in answers worker-independent: the
    // same batch through a different pool shape gives identical
    // profiles.
    let runtime1 = ServeRuntime::new(
        Arc::clone(&index),
        Some(features),
        ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let again = runtime1.submit_batch(batch);
    match (&responses[8], &again[8]) {
        (QueryResponse::FoldedIn(a), QueryResponse::FoldedIn(b)) => {
            assert_eq!(a.membership, b.membership);
            assert_eq!(a.topics, b.topics);
        }
        other => panic!("unexpected responses {other:?}"),
    }

    // Counters saw one query per class bucket.
    let d = runtime.diagnostics();
    assert_eq!(d.workers, 4);
    assert_eq!(d.batches, 1);
    assert_eq!(d.ranking.queries, 2);
    assert_eq!(d.top_words.queries, 3);
    assert_eq!(d.profile.queries, 1);
    assert_eq!(d.fold_in.queries, 1);
    assert_eq!(d.link_score.queries, 2);
    assert_eq!(d.total_queries(), 9);

    runtime.shutdown();
    runtime1.shutdown();
}

#[test]
fn malformed_requests_come_back_as_errors_not_panics() {
    let (g, _) = generate(&GenConfig::twitter_like(Scale::Tiny));
    let cfg = CpdConfig {
        em_iters: 1,
        gibbs_sweeps: 1,
        nu_iters: 5,
        seed: 4,
        ..CpdConfig::experiment(3, 4)
    };
    let fit = Cpd::new(cfg.clone()).unwrap().fit(&g);
    let index = Arc::new(ProfileIndex::build(fit.model, &cfg));
    // No UserFeatures: diffusion scoring is unavailable.
    let runtime = ServeRuntime::new(
        index,
        None,
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let responses = runtime.submit_batch(vec![
        QueryRequest::TopWords { topic: 999, k: 5 },
        QueryRequest::UserProfile {
            user: UserId(u32::MAX),
        },
        QueryRequest::RankCommunities {
            query: vec![WordId(u32::MAX - 1)],
        },
        QueryRequest::DiffusionScore {
            u: UserId(0),
            v: UserId(1),
            words: vec![WordId(0)],
            at: 0,
        },
        QueryRequest::TopWords { topic: 0, k: 5 },
    ]);
    assert!(matches!(responses[0], QueryResponse::Error(_)));
    assert!(matches!(responses[1], QueryResponse::Error(_)));
    assert!(matches!(responses[2], QueryResponse::Error(_)));
    assert!(matches!(responses[3], QueryResponse::Error(_)));
    // The pool survives and still answers the valid request.
    assert!(matches!(&responses[4], QueryResponse::Ranking(r) if r.len() == 5));
}

/// Even a query that *panics* (NaNs smuggled into a hand-built model —
/// `load_model` would reject them, but the API takes any `CpdModel`)
/// must come back as an `Error` response, not poison the pool.
#[test]
fn panicking_query_does_not_poison_the_pool() {
    use cpd_core::{CpdModel, Eta};
    let mut model = CpdModel {
        pi: vec![vec![0.5, 0.5], vec![f64::NAN, f64::NAN]],
        theta: vec![vec![0.5, 0.5], vec![0.5, 0.5]],
        phi: vec![vec![0.5, 0.5], vec![0.5, 0.5]],
        eta: Eta::uniform(2, 2),
        nu: vec![0.0; cpd_core::features::N_FEATURES],
        topic_popularity: vec![vec![0.5, 0.5]],
        doc_community: vec![],
        doc_topic: vec![],
    };
    model.pi[1][0] = f64::NAN;
    let cfg = CpdConfig::new(2, 2);
    let index = Arc::new(ProfileIndex::build(model, &cfg));
    let runtime = ServeRuntime::new(
        index,
        None,
        ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    // UserProfile on the NaN row panics inside its max_by comparator;
    // the next request drains through the same (sole) worker.
    let responses = runtime.submit_batch(vec![
        QueryRequest::UserProfile { user: UserId(1) },
        QueryRequest::TopWords { topic: 0, k: 2 },
    ]);
    assert!(
        matches!(&responses[0], QueryResponse::Error(e) if e.contains("panicked")),
        "{:?}",
        responses[0]
    );
    assert!(matches!(&responses[1], QueryResponse::Ranking(r) if r.len() == 2));
}
