//! Wire-codec contract tests: every frame class round-trips
//! byte-exactly, and every way a frame can be wrong — truncation,
//! corruption, oversized length prefixes, unknown tags, trailing bytes
//! — is rejected as a typed error, never a panic or a misdecode.

use cpd_serve::wire::{
    encode_request, encode_request_versioned, encode_response, encode_response_versioned,
    read_request, read_request_versioned, read_response, write_request, RequestFrame,
    ResponseFrame, WireError, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD, MIN_WIRE_VERSION, WIRE_VERSION,
};
use cpd_serve::{
    CacheStats, ClassStats, FoldInItem, FoldedProfile, HealthState, HealthStatus, KeepReason,
    NetStats, QueryRequest, QueryResponse, ServeDiagnostics, SpanRecord, Trace, TraceContext,
};
use proptest::prelude::*;
use social_graph::{UserId, WordId};

// ---------------------------------------------------------------------
// Generators (ingredient tuples; the match in the test body picks the
// variant, so every round-trip case covers one of each class).
// ---------------------------------------------------------------------

/// Build the `variant`-th request class from generic ingredients.
fn build_request(
    variant: usize,
    words: Vec<u32>,
    docs: Vec<Vec<u32>>,
    ids: (u32, u32),
    sizes: (usize, usize, usize),
    seed: u64,
) -> QueryRequest {
    let words: Vec<WordId> = words.into_iter().map(WordId).collect();
    let (a, b) = ids;
    let (x, y, k) = sizes;
    match variant % 9 {
        0 => QueryRequest::RankCommunities { query: words },
        1 => QueryRequest::QueryTopics { query: words },
        2 => QueryRequest::TopWords { topic: x, k },
        3 => QueryRequest::CommunityTopics { community: x, k },
        4 => QueryRequest::PairTopics { from: x, to: y, k },
        5 => QueryRequest::UserProfile { user: UserId(a) },
        6 => QueryRequest::FriendshipScore {
            u: UserId(a),
            v: UserId(b),
        },
        7 => QueryRequest::DiffusionScore {
            u: UserId(a),
            v: UserId(b),
            words,
            at: seed as u32,
        },
        _ => QueryRequest::FoldIn {
            item: FoldInItem {
                docs: docs
                    .into_iter()
                    .map(|d| d.into_iter().map(WordId).collect())
                    .collect(),
                friends: vec![UserId(a), UserId(b)],
            },
            seed,
        },
    }
}

/// Build the `variant`-th response class from generic ingredients.
fn build_response(
    variant: usize,
    row: Vec<f64>,
    rows: Vec<Vec<f64>>,
    ids: (u32, u32),
    msg: String,
) -> QueryResponse {
    let (a, b) = ids;
    match variant % 6 {
        0 => QueryResponse::Ranking(
            row.iter()
                .enumerate()
                .map(|(i, &s)| (i.wrapping_add(a as usize), s))
                .collect(),
        ),
        1 => QueryResponse::Profile {
            membership: row,
            dominant: a as usize,
        },
        2 => QueryResponse::Score(row.first().copied().unwrap_or(0.25)),
        3 => QueryResponse::FoldedIn(Box::new(FoldedProfile {
            membership: row.clone(),
            topics: row,
            doc_topics: rows,
        })),
        4 => QueryResponse::Overloaded {
            retry_after_ms: u64::from(b),
        },
        _ => QueryResponse::Error(msg),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity for every request frame class,
    /// and re-encoding the decoded frame reproduces the bytes exactly.
    #[test]
    fn request_frames_round_trip(
        variant in 0usize..9,
        words in prop::collection::vec(0u32..100_000, 0..12),
        docs in prop::collection::vec(prop::collection::vec(0u32..100_000, 0..6), 0..4),
        a in 0u32..1_000_000,
        b in 0u32..1_000_000,
        x in 0usize..10_000,
        y in 0usize..10_000,
        k in 0usize..500,
        seed in 0u64..u64::MAX,
        deadline_raw in 0u32..600_000,
        trace_id in 1u64..u64::MAX,
        parent_span in 0u64..10_000,
        trace_sel in 0u8..4,
    ) {
        // The vendored proptest stub has no Option strategy; fold
        // "no deadline" / "no trace" in as residue classes.
        let deadline_ms = (deadline_raw % 3 != 0).then_some(deadline_raw);
        let trace = match trace_sel {
            0 => None,
            1 => Some(TraceContext { trace_id, parent_span, sampled: false }),
            _ => Some(TraceContext { trace_id, parent_span, sampled: true }),
        };
        let frame = RequestFrame::Query {
            request: build_request(variant, words, docs, (a, b), (x, y, k), seed),
            deadline_ms,
            trace,
        };
        let bytes = encode_request(&frame);
        let mut r = &bytes[..];
        let decoded = read_request(&mut r).unwrap().expect("one frame in");
        prop_assert_eq!(&decoded, &frame);
        prop_assert!(r.is_empty(), "frame consumed exactly");
        prop_assert_eq!(encode_request(&decoded), bytes);
    }

    /// Same for every response frame class — including NaN-free float
    /// payloads surviving bit-exactly.
    #[test]
    fn response_frames_round_trip(
        variant in 0usize..6,
        row in prop::collection::vec(-1.0e12f64..1.0e12, 0..10),
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 0..5), 0..4),
        a in 0u32..1_000_000,
        b in 0u32..1_000_000,
        msg in "[a-z ]{0,40}",
        mirror_raw in 1u64..u64::MAX,
        mirror_sel in 0u8..3,
    ) {
        let frame = ResponseFrame::Response {
            response: build_response(variant, row, rows, (a, b), msg),
            trace_id: (mirror_sel != 0).then_some(mirror_raw),
        };
        let bytes = encode_response(&frame);
        let mut r = &bytes[..];
        let decoded = read_response(&mut r).unwrap().expect("one frame in");
        prop_assert_eq!(&decoded, &frame);
        prop_assert!(r.is_empty());
        prop_assert_eq!(encode_response(&decoded), bytes);
    }

    /// Every strict prefix of a valid frame is rejected as malformed —
    /// truncation can never decode, and never panics.
    #[test]
    fn truncated_frames_are_malformed(
        variant in 0usize..9,
        words in prop::collection::vec(0u32..100, 1..6),
        cut in 0usize..1000,
    ) {
        let frame = RequestFrame::Query {
            request: build_request(variant, words, vec![vec![1, 2]], (1, 2), (3, 4, 5), 99),
            deadline_ms: Some(1_500),
            // A full trace context widens the truncation surface: cuts
            // land inside the trace field as often as the query body.
            trace: Some(TraceContext { trace_id: 0xDEAD_BEEF, parent_span: 7, sampled: true }),
        };
        let bytes = encode_request(&frame);
        // Cut somewhere strictly inside the frame (never index 0 — an
        // empty stream is a *clean* EOF by contract).
        let cut = 1 + cut % (bytes.len() - 1);
        let err = read_request(&mut &bytes[..cut]).unwrap_err();
        prop_assert!(matches!(err, WireError::Malformed(_)), "cut at {cut}: {err}");
    }

    /// Flipping any single payload byte either still decodes (bit flips
    /// inside float/int payloads are legal values) or fails with a
    /// typed error — never a panic, and never a frame that re-encodes
    /// to different framing.
    #[test]
    fn corrupt_payload_bytes_never_panic(
        variant in 0usize..9,
        words in prop::collection::vec(0u32..100, 1..6),
        flip_at in 0usize..1000,
        flip_bit in 0u8..8,
    ) {
        let frame = RequestFrame::Query {
            request: build_request(variant, words, vec![vec![7]], (1, 2), (3, 4, 5), 42),
            deadline_ms: None,
            trace: Some(TraceContext { trace_id: 0xC0FFEE, parent_span: 3, sampled: false }),
        };
        let mut bytes = encode_request(&frame);
        if bytes.len() > FRAME_HEADER_LEN {
            let i = FRAME_HEADER_LEN + flip_at % (bytes.len() - FRAME_HEADER_LEN);
            bytes[i] ^= 1 << flip_bit;
            // Must return *something* without panicking.
            let _ = read_request(&mut &bytes[..]);
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic rejection cases
// ---------------------------------------------------------------------

fn valid_stats_frame() -> ResponseFrame {
    ResponseFrame::Stats(Box::new(ServeDiagnostics {
        workers: 4,
        batches: 17,
        generation: 3,
        queue_high_water: 9,
        shed: 2,
        deadline_exceeded: 1,
        cache: CacheStats {
            hits: 5,
            misses: 6,
            evictions: 1,
            entries: 4,
        },
        net: NetStats {
            connections: 2,
            frames_in: 100,
            frames_out: 101,
        },
        ranking: ClassStats {
            queries: 10,
            seconds: 0.5,
            p50_micros: 42.0,
            p99_micros: 180.5,
            p999_micros: 950.0,
        },
        top_words: ClassStats::default(),
        profile: ClassStats::default(),
        fold_in: ClassStats {
            queries: 3,
            seconds: 1.25,
            p50_micros: 410_000.0,
            p99_micros: 420_000.0,
            p999_micros: 430_000.0,
        },
        link_score: ClassStats::default(),
    }))
}

#[test]
fn admin_and_stats_frames_round_trip() {
    let requests = [
        RequestFrame::Reload {
            path: "/models/night.cpd".into(),
        },
        RequestFrame::Stats,
        RequestFrame::Shutdown,
        RequestFrame::Metrics,
        RequestFrame::Health,
    ];
    let mut bytes = Vec::new();
    for f in &requests {
        bytes.extend_from_slice(&encode_request(f));
    }
    let mut r = &bytes[..];
    for f in &requests {
        assert_eq!(read_request(&mut r).unwrap().as_ref(), Some(f));
    }
    assert!(read_request(&mut r).unwrap().is_none());

    let responses = [
        ResponseFrame::Reloaded { generation: 42 },
        valid_stats_frame(),
        ResponseFrame::ShuttingDown,
        ResponseFrame::Metrics(
            "# TYPE cpd_serve_query_seconds summary\n\
             cpd_serve_query_seconds{class=\"ranking\",quantile=\"0.5\"} 0.000042\n"
                .into(),
        ),
        ResponseFrame::Health(HealthStatus {
            ready: true,
            live: true,
            state: HealthState::Degraded,
            generation: 42,
            uptime_seconds: 12.75,
        }),
        ResponseFrame::Error("nope".into()),
    ];
    let mut bytes = Vec::new();
    for f in &responses {
        bytes.extend_from_slice(&encode_response(f));
    }
    let mut r = &bytes[..];
    for f in &responses {
        assert_eq!(read_response(&mut r).unwrap().as_ref(), Some(f));
    }
    assert!(read_response(&mut r).unwrap().is_none());
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = encode_request(&RequestFrame::Stats);
    bytes[0] ^= 0xFF;
    let err = read_request(&mut &bytes[..]).unwrap_err();
    assert!(
        matches!(&err, WireError::Malformed(m) if m.contains("magic")),
        "{err}"
    );
}

#[test]
fn future_version_is_refused_by_name() {
    let mut bytes = encode_request(&RequestFrame::Stats);
    bytes[2] = WIRE_VERSION + 1;
    let err = read_request(&mut &bytes[..]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("version"), "{msg}");
    assert!(msg.contains(&(WIRE_VERSION + 1).to_string()), "{msg}");
}

#[test]
fn stale_version_is_refused_by_name() {
    // A v2 peer (pre-deadline, pre-Overloaded) must be refused with a
    // message naming both versions — cross-version frames never decode
    // as garbage. (v3, one below current, is *accepted* — see the
    // interop tests — so the stale case is one below the minimum.)
    let stale = MIN_WIRE_VERSION - 1;
    let mut bytes = encode_request(&RequestFrame::Stats);
    bytes[2] = stale;
    let err = read_request(&mut &bytes[..]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("version"), "{msg}");
    assert!(msg.contains(&stale.to_string()), "{msg}");
    assert!(msg.contains(&WIRE_VERSION.to_string()), "{msg}");
    // Same on the response side.
    let mut bytes = encode_response(&ResponseFrame::ShuttingDown);
    bytes[2] = stale;
    assert!(read_response(&mut &bytes[..]).is_err());
}

/// A v3 peer still speaks: traceless queries decode (reporting the
/// peer's version so the server can answer in kind), and a v3-encoded
/// response simply drops the trace mirror instead of corrupting the
/// frame.
#[test]
fn v3_peers_round_trip_traceless() {
    let req = RequestFrame::Query {
        request: QueryRequest::TopWords { topic: 1, k: 3 },
        deadline_ms: Some(250),
        trace: None,
    };
    let bytes = encode_request_versioned(&req, 3);
    assert_eq!(bytes[2], 3, "encoded at the peer's version");
    let mut r = &bytes[..];
    let (decoded, version) = read_request_versioned(&mut r).unwrap().expect("one frame");
    assert_eq!(version, 3);
    assert_eq!(decoded, req);
    assert!(r.is_empty());

    // Response side: the v4 mirror field does not exist at v3, so a
    // v3 re-encode loses exactly the mirror and nothing else.
    let resp = ResponseFrame::Response {
        response: QueryResponse::Score(0.5),
        trace_id: Some(0xFEED),
    };
    let bytes = encode_response_versioned(&resp, 3);
    assert_eq!(bytes[2], 3);
    let decoded = read_response(&mut &bytes[..]).unwrap().expect("one frame");
    assert_eq!(
        decoded,
        ResponseFrame::Response {
            response: QueryResponse::Score(0.5),
            trace_id: None,
        }
    );
}

/// A `Traces` reply carrying real span trees round-trips exactly, and
/// a corrupted keep-reason byte is a typed rejection.
#[test]
fn traces_reply_round_trips_and_rejects_bad_keep() {
    let reply = ResponseFrame::Traces(vec![Trace {
        trace_id: 0xABCD_EF01,
        keep: KeepReason::Slow,
        duration_nanos: 2_000_000,
        dropped_spans: 1,
        spans: vec![
            SpanRecord {
                id: 1,
                parent: 0,
                name: "request".into(),
                start_nanos: 0,
                end_nanos: 2_000_000,
            },
            SpanRecord {
                id: 2,
                parent: 1,
                name: "execute.fold_in".into(),
                start_nanos: 10_000,
                end_nanos: 1_900_000,
            },
        ],
    }]);
    let bytes = encode_response(&reply);
    let decoded = read_response(&mut &bytes[..]).unwrap().expect("one frame");
    assert_eq!(decoded, reply);
    assert_eq!(encode_response(&decoded), bytes);

    // Find the keep-reason byte (the only 0x01 for `Slow` right after
    // the trace id) the robust way: corrupt every payload byte to an
    // out-of-range keep value and require that *some* corruption is
    // refused as malformed while none panics.
    let mut saw_malformed = false;
    for i in FRAME_HEADER_LEN..bytes.len() {
        let mut dup = bytes.clone();
        dup[i] = 0xEE;
        if let Err(WireError::Malformed(_)) = read_response(&mut &dup[..]) {
            saw_malformed = true;
        }
    }
    assert!(saw_malformed, "corrupting the reply never tripped a check");
}

#[test]
fn unknown_tags_are_rejected_on_both_sides() {
    let mut bytes = encode_request(&RequestFrame::Stats);
    bytes[3] = 0x7E;
    assert!(matches!(
        read_request(&mut &bytes[..]).unwrap_err(),
        WireError::Malformed(_)
    ));
    let mut bytes = encode_response(&ResponseFrame::ShuttingDown);
    bytes[3] = 0x7E;
    assert!(matches!(
        read_response(&mut &bytes[..]).unwrap_err(),
        WireError::Malformed(_)
    ));
}

#[test]
fn trailing_payload_bytes_are_rejected() {
    // A Stats request declares an empty payload; hand it one byte.
    let mut bytes = encode_request(&RequestFrame::Stats);
    bytes[4] = 1; // payload length
    bytes.push(0xAB);
    let err = read_request(&mut &bytes[..]).unwrap_err();
    assert!(
        matches!(&err, WireError::Malformed(m) if m.contains("trailing")),
        "{err}"
    );
}

#[test]
fn oversized_frames_are_rejected_from_the_header() {
    let mut bytes = encode_request(&RequestFrame::Stats);
    bytes[4..8].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
    // Nothing after the header: if the length were trusted the reader
    // would block allocating/filling 16 MiB; instead the header alone
    // is enough to refuse.
    let err = read_request(&mut &bytes[..8]).unwrap_err();
    assert!(matches!(err, WireError::Oversized { len } if len == MAX_FRAME_PAYLOAD + 1));
    // Same check on the response side.
    let mut bytes = encode_response(&ResponseFrame::ShuttingDown);
    bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        read_response(&mut &bytes[..8]).unwrap_err(),
        WireError::Oversized { .. }
    ));
}

#[test]
fn empty_stream_is_clean_eof_on_both_sides() {
    assert!(read_request(&mut &[][..]).unwrap().is_none());
    assert!(read_response(&mut &[][..]).unwrap().is_none());
}

#[test]
fn oversized_response_encodes_as_an_in_band_error_frame() {
    // ~17.6 MB of ranking pairs: over the 16 MiB payload limit. The
    // encoder must substitute a framed Error rather than emit a frame
    // every reader rejects (or, past u32, a wrapped length prefix).
    let huge = ResponseFrame::Response {
        response: QueryResponse::Ranking((0..1_100_000).map(|i| (i, 0.5)).collect()),
        trace_id: None,
    };
    let bytes = encode_response(&huge);
    assert!(bytes.len() < MAX_FRAME_PAYLOAD as usize);
    match read_response(&mut &bytes[..]).unwrap() {
        Some(ResponseFrame::Error(m)) => assert!(m.contains("frame limit"), "{m}"),
        other => panic!("expected an Error frame, got {other:?}"),
    }
}

#[test]
fn oversized_request_is_refused_at_write_time() {
    // 4.2M query words is ~16.8 MB of payload: the writer must refuse
    // before anything hits the stream.
    let huge = RequestFrame::Query {
        request: QueryRequest::RankCommunities {
            query: vec![WordId(1); 4_200_000],
        },
        deadline_ms: None,
        trace: None,
    };
    let mut sink = Vec::new();
    let err = write_request(&mut sink, &huge).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(sink.is_empty(), "nothing may be written");
}
