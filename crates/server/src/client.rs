//! The blocking client: one TCP connection speaking the CPD wire
//! protocol, used by the loopback tests, benches and examples — and a
//! reference implementation for clients in other languages.
//!
//! # Resilience
//!
//! The client is built for servers that *fail well*:
//!
//! * **Timeouts everywhere** — connect, read and write deadlines
//!   default on ([`ClientOptions`]), so a server that dies mid-frame
//!   surfaces as a typed [`ClientError::Timeout`] instead of hanging
//!   the caller forever.
//! * **Retry with backoff** — [`Client::query_batch`] transparently
//!   retries slots answered [`QueryResponse::Overloaded`] and
//!   transient transport failures (connection reset, clean EOF,
//!   timeouts), reconnecting as needed, with capped exponential
//!   backoff and deterministic seeded jitter, all under an overall
//!   per-call budget ([`ClientOptions::call_budget`]). Queries are
//!   read-only and deterministic against a given snapshot, so
//!   resending after an ambiguous failure is safe.
//! * **Deadline propagation** — [`ClientOptions::request_deadline`]
//!   attaches a wire deadline budget to every query so the server can
//!   drop work the client has already given up on.
//!
//! Admin operations (reload, stats, shutdown…) are **not** retried:
//! they either have side effects or are cheap probes whose failure the
//! caller wants to see.

use cpd_serve::wire::{read_response, write_request, RequestFrame, ResponseFrame, WireError};
use cpd_serve::{HealthStatus, QueryRequest, QueryResponse, ServeDiagnostics};
use cpd_telemetry::{ActiveTrace, KeepReason, Trace, TraceConfig, TraceSpanGuard, Tracer};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or codec failure.
    Wire(WireError),
    /// The server answered with a frame-level `Error` (malformed frame
    /// or failed admin operation). Query-level validation errors come
    /// back inside [`QueryResponse::Error`] instead.
    Server(String),
    /// The server answered with a frame class the request cannot
    /// produce (protocol bug on one side).
    Protocol(String),
    /// A connect/read/write deadline expired. `what` names the
    /// operation that timed out.
    Timeout {
        /// The operation that hit its deadline.
        what: &'static str,
    },
    /// The server closed the connection mid-conversation (clean EOF
    /// where a response was due).
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "client wire failure: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::Timeout { what } => write!(f, "{what} timed out"),
            ClientError::Disconnected => write!(f, "server closed the connection mid-reply"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Timeout { .. } => ClientError::Timeout { what: "read" },
            WireError::Io(io) if is_timeout_io(&io) => ClientError::Timeout { what: "io" },
            other => ClientError::Wire(other),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        if is_timeout_io(&e) {
            ClientError::Timeout { what: "io" }
        } else {
            ClientError::Wire(WireError::Io(e))
        }
    }
}

fn is_timeout_io(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Is this failure worth a reconnect-and-resend? Covers the ways a
/// dying/restarting server or injected fault surfaces at this layer;
/// `Server`/`Protocol` answers are deliberate and final.
fn is_transient(e: &ClientError) -> bool {
    match e {
        ClientError::Timeout { .. } | ClientError::Disconnected => true,
        // Any wire-level failure (I/O error, torn frame decoded as
        // malformed, oversized garbage) means the stream is gone or
        // untrustworthy; a fresh connection is the only way forward
        // and retrying is bounded by the policy either way.
        ClientError::Wire(_) => true,
        ClientError::Server(_) | ClientError::Protocol(_) => false,
    }
}

/// Retry/backoff policy for [`Client::query_batch`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retry rounds after the initial attempt (0 = fail fast).
    pub max_retries: u32,
    /// First backoff; doubles each round up to [`max_backoff`].
    ///
    /// [`max_backoff`]: RetryPolicy::max_backoff
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter applied to each backoff
    /// (±25%) — decorrelates a thundering herd of retrying clients
    /// while keeping any single client's schedule replayable.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0x5EED,
        }
    }
}

/// Client construction options; the defaults suit a healthy loopback
/// or LAN deployment.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// TCP connect deadline (`None` = OS default, which can be
    /// minutes).
    pub connect_timeout: Option<Duration>,
    /// Socket read deadline: how long to wait for a response byte
    /// before the call fails with [`ClientError::Timeout`]. Must
    /// comfortably exceed the server's worst honest latency.
    pub read_timeout: Option<Duration>,
    /// Socket write deadline.
    pub write_timeout: Option<Duration>,
    /// Overall per-call budget across every retry round and backoff
    /// sleep in one `query`/`query_batch` call (`None` = bounded only
    /// by the per-attempt timeouts and retry counts).
    pub call_budget: Option<Duration>,
    /// Retry policy for queries (`None` = never retry).
    pub retry: Option<RetryPolicy>,
    /// Wire deadline budget attached to every query, so the server
    /// can drop work this client has stopped waiting for. `None`
    /// sends no deadline (the server's own queue-wait cap still
    /// applies).
    pub request_deadline: Option<Duration>,
    /// Client-side tracing policy. With `sample_one_in > 0` the
    /// client head-samples queries: a sampled query gets a local span
    /// tree (`client_request` root, `send` / `await_response`
    /// children) kept in [`Client::tracer`]'s store, and its
    /// [`cpd_telemetry::TraceContext`] travels on the wire so the
    /// server's spans join the same trace — fetch those with
    /// [`Client::traces`]. The default samples nothing.
    pub trace: TraceConfig,
}

impl Default for ClientOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            call_budget: Some(Duration::from_secs(120)),
            retry: Some(RetryPolicy::default()),
            request_deadline: None,
            trace: TraceConfig::default(),
        }
    }
}

/// A blocking connection to a [`Server`](crate::Server).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// The resolved address, kept for reconnects.
    addr: SocketAddr,
    options: ClientOptions,
    /// SplitMix64 state behind the backoff jitter.
    jitter_state: u64,
    /// Client-side tracing: mints trace ids, makes the head-sampling
    /// decision, stores this side's completed traces.
    tracer: Tracer,
}

impl Client {
    /// Connect with [`ClientOptions::default`] (Nagle disabled — the
    /// protocol is request/response and frames are already
    /// write-buffered).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with(addr, ClientOptions::default())
    }

    /// Connect with explicit options.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        options: ClientOptions,
    ) -> Result<Self, ClientError> {
        let mut last_err: Option<ClientError> = None;
        for candidate in addr.to_socket_addrs()? {
            match open_stream(candidate, &options) {
                Ok(stream) => {
                    let jitter_state = options.retry.as_ref().map(|r| r.jitter_seed).unwrap_or(0)
                        ^ 0x9E37_79B9_7F4A_7C15;
                    let read_half = stream.try_clone().map_err(ClientError::from)?;
                    let tracer = Tracer::new(options.trace);
                    return Ok(Self {
                        reader: BufReader::new(read_half),
                        writer: BufWriter::new(stream),
                        addr: candidate,
                        options,
                        jitter_state,
                        tracer,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or(ClientError::Protocol(
            "address resolved to no candidates".into(),
        )))
    }

    /// Drop the current connection and dial the same address again
    /// (fresh socket, same options). Any unread responses die with the
    /// old socket — callers resend what is still unanswered.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = open_stream(self.addr, &self.options)?;
        let read_half = stream.try_clone().map_err(ClientError::from)?;
        self.reader = BufReader::new(read_half);
        self.writer = BufWriter::new(stream);
        Ok(())
    }

    /// One query, one answer.
    pub fn query(&mut self, request: QueryRequest) -> Result<QueryResponse, ClientError> {
        Ok(self
            .query_batch(vec![request])?
            .pop()
            .expect("one response per request"))
    }

    /// Pipeline a batch: every request frame is written before the
    /// first response is read, so the server folds them into one
    /// concurrent `submit_batch` call. Responses come back in request
    /// order.
    ///
    /// A frame-level `Error` arriving in a response slot (e.g. the
    /// server substituting for a response that exceeded the frame
    /// limit) is surfaced **in that slot** as [`QueryResponse::Error`]
    /// — the remaining responses are still read, so the connection
    /// stays in sync for the next call instead of handing later
    /// queries earlier queries' answers.
    ///
    /// With a [`RetryPolicy`] armed, slots answered
    /// [`QueryResponse::Overloaded`] are retried (only those slots are
    /// resent) after a backoff honouring the server's
    /// `retry_after_ms` hint, and transient transport failures
    /// reconnect and resend every still-unanswered slot — queries are
    /// read-only, so a resend after an ambiguous failure cannot
    /// double-apply anything. When retries (or the call budget) run
    /// out, still-shed slots come back as `Overloaded` for the caller
    /// to handle; transport failures surface as the last error.
    pub fn query_batch(
        &mut self,
        requests: Vec<QueryRequest>,
    ) -> Result<Vec<QueryResponse>, ClientError> {
        let started = Instant::now();
        let n = requests.len();
        let mut slots: Vec<Option<QueryResponse>> = (0..n).map(|_| None).collect();
        // Indices (into `requests`) still awaiting a real answer.
        let mut pending: Vec<usize> = (0..n).collect();
        // Head-sample per slot: a sampled slot gets a `client_request`
        // root span held open across retries, and its context rides
        // every (re)send so server spans join the same trace.
        let mut roots: Vec<Option<(ActiveTrace, TraceSpanGuard)>> = (0..n)
            .map(|_| {
                self.tracer.mint(started).map(|t| {
                    let root = t.start_span("client_request", 0);
                    (t, root)
                })
            })
            .collect();
        let policy = self.options.retry.clone();
        let max_retries = policy.as_ref().map_or(0, |p| p.max_retries);
        let mut attempt: u32 = 0;
        loop {
            match self.send_and_collect(&requests, &pending, &roots) {
                Ok(round) => {
                    let mut hint_ms: u64 = 0;
                    let mut still = Vec::new();
                    for (&slot, response) in pending.iter().zip(round) {
                        match response {
                            QueryResponse::Overloaded { retry_after_ms } => {
                                hint_ms = hint_ms.max(retry_after_ms);
                                still.push(slot);
                            }
                            answered => slots[slot] = Some(answered),
                        }
                    }
                    pending = still;
                    if pending.is_empty() {
                        break;
                    }
                    if attempt >= max_retries || self.out_of_budget(started) {
                        // Typed give-up: the caller sees exactly which
                        // slots the server shed, with the final hint.
                        for &slot in &pending {
                            slots[slot] = Some(QueryResponse::Overloaded {
                                retry_after_ms: hint_ms.max(1),
                            });
                        }
                        break;
                    }
                    attempt += 1;
                    self.backoff(attempt, hint_ms, started);
                }
                Err(e) if is_transient(&e) && attempt < max_retries => {
                    if self.out_of_budget(started) {
                        return Err(e);
                    }
                    attempt += 1;
                    self.backoff(attempt, 0, started);
                    // The old stream may hold half a conversation;
                    // only a fresh one has known state. A failed
                    // reconnect is itself transient (the server may be
                    // restarting) — loop and pay another attempt.
                    if let Err(re) = self.reconnect() {
                        if attempt >= max_retries || self.out_of_budget(started) {
                            return Err(re);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        // Close the root spans and keep the client-side trees. Shed
        // and errored slots are tagged so the store's tail-kept set
        // matches the server's.
        for (slot, entry) in roots.iter_mut().enumerate() {
            if let Some((trace, root)) = entry.take() {
                root.finish();
                let keep = match slots[slot].as_ref() {
                    Some(QueryResponse::Overloaded { .. }) => KeepReason::Shed,
                    Some(QueryResponse::Error(_)) => KeepReason::Error,
                    _ => KeepReason::Sampled,
                };
                self.tracer.complete(&trace, keep);
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every slot answered or shed"))
            .collect())
    }

    /// Write the pending requests (with any configured wire deadline
    /// and trace context) and read exactly that many responses.
    fn send_and_collect(
        &mut self,
        requests: &[QueryRequest],
        pending: &[usize],
        roots: &[Option<(ActiveTrace, TraceSpanGuard)>],
    ) -> Result<Vec<QueryResponse>, ClientError> {
        let deadline_ms = self
            .options
            .request_deadline
            .map(|d| d.as_millis().min(u128::from(u32::MAX)) as u32);
        for &slot in pending {
            let trace = roots[slot].as_ref().map(|(t, root)| t.context(root.id()));
            let send_start = roots[slot].as_ref().map(|_| Instant::now());
            write_request(
                &mut self.writer,
                &RequestFrame::Query {
                    request: requests[slot].clone(),
                    deadline_ms,
                    trace,
                },
            )?;
            if let (Some((t, root)), Some(start)) = (roots[slot].as_ref(), send_start) {
                t.record_between("send", root.id(), start, Instant::now());
            }
        }
        self.writer.flush()?;
        let mut responses = Vec::with_capacity(pending.len());
        for (i, &slot) in pending.iter().enumerate() {
            let await_start = roots[slot].as_ref().map(|_| Instant::now());
            match self.read_frame()? {
                ResponseFrame::Response { response, .. } => {
                    if let (Some((t, root)), Some(start)) = (roots[slot].as_ref(), await_start) {
                        t.record_between("await_response", root.id(), start, Instant::now());
                    }
                    responses.push(response);
                }
                ResponseFrame::Error(m) => responses.push(QueryResponse::Error(m)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected response {i} of {}, got {other:?}",
                        pending.len()
                    )))
                }
            }
        }
        Ok(responses)
    }

    fn out_of_budget(&self, started: Instant) -> bool {
        self.options
            .call_budget
            .is_some_and(|b| started.elapsed() >= b)
    }

    /// Sleep `min(max_backoff, base · 2^(attempt-1))`, jittered ±25%
    /// deterministically, raised to the server's `retry_after` hint,
    /// and clipped to whatever call budget remains.
    fn backoff(&mut self, attempt: u32, hint_ms: u64, started: Instant) {
        let Some(policy) = &self.options.retry else {
            return;
        };
        let base = policy.base_backoff.as_millis() as u64;
        let exp = base.saturating_mul(1u64 << (attempt - 1).min(20));
        let capped = exp.min(policy.max_backoff.as_millis() as u64);
        // SplitMix64 step → jitter factor in [0.75, 1.25).
        self.jitter_state = self.jitter_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let jittered = capped / 2 + (capped.max(2) * (z % 512) / 1024);
        let mut sleep_ms = jittered.max(hint_ms);
        if let Some(budget) = self.options.call_budget {
            let remaining = budget.saturating_sub(started.elapsed());
            sleep_ms = sleep_ms.min(remaining.as_millis() as u64);
        }
        if sleep_ms > 0 {
            std::thread::sleep(Duration::from_millis(sleep_ms));
        }
    }

    /// Ask the server to hot-reload its index from a model snapshot at
    /// `path` **on the server's filesystem**; returns the new snapshot
    /// generation.
    pub fn reload(&mut self, path: &str) -> Result<u64, ClientError> {
        match self.round_trip(&RequestFrame::Reload { path: path.into() })? {
            ResponseFrame::Reloaded { generation } => Ok(generation),
            ResponseFrame::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Protocol(format!(
                "expected Reloaded, got {other:?}"
            ))),
        }
    }

    /// Fetch the server's live [`ServeDiagnostics`].
    pub fn stats(&mut self) -> Result<ServeDiagnostics, ClientError> {
        match self.round_trip(&RequestFrame::Stats)? {
            ResponseFrame::Stats(d) => Ok(*d),
            ResponseFrame::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Protocol(format!(
                "expected Stats, got {other:?}"
            ))),
        }
    }

    /// Fetch the server's metrics in Prometheus text exposition format
    /// — per-query-class latency quantiles, trainer sweep spans (when
    /// the fit shared the serve registry), cache and transport
    /// counters. Answered on the connection's reader thread, never
    /// queued behind the query pool, so a scrape works even under full
    /// query load.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.round_trip(&RequestFrame::Metrics)? {
            ResponseFrame::Metrics(text) => Ok(text),
            ResponseFrame::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Protocol(format!(
                "expected Metrics, got {other:?}"
            ))),
        }
    }

    /// Fetch the server's readiness/liveness probe: pool state, live
    /// snapshot generation and uptime. Like [`Client::metrics`], this
    /// is answered inline rather than through the query pool.
    pub fn health(&mut self) -> Result<HealthStatus, ClientError> {
        match self.round_trip(&RequestFrame::Health)? {
            ResponseFrame::Health(h) => Ok(h),
            ResponseFrame::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Protocol(format!(
                "expected Health, got {other:?}"
            ))),
        }
    }

    /// Fetch the server's kept traces (newest first): head-sampled
    /// requests plus the tail-kept forensics — sheds, deadline drops,
    /// errors, and anything over the slow threshold. Answered inline
    /// on the connection's reader thread like [`Client::metrics`].
    ///
    /// The client keeps its own half of each sampled trace locally —
    /// see [`Client::tracer`]; matching `trace_id`s join the two
    /// sides.
    pub fn traces(&mut self) -> Result<Vec<Trace>, ClientError> {
        match self.round_trip(&RequestFrame::Traces)? {
            ResponseFrame::Traces(traces) => Ok(traces),
            ResponseFrame::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Protocol(format!(
                "expected Traces, got {other:?}"
            ))),
        }
    }

    /// The client-side tracer: its store holds this client's span
    /// trees (`client_request` / `send` / `await_response`) for every
    /// head-sampled query, keyed by the same trace ids the server
    /// reports.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Ask the server to stop accepting connections and drain
    /// (acknowledged before this connection closes).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&RequestFrame::Shutdown)? {
            ResponseFrame::ShuttingDown => Ok(()),
            ResponseFrame::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Protocol(format!(
                "expected ShuttingDown, got {other:?}"
            ))),
        }
    }

    fn round_trip(&mut self, frame: &RequestFrame) -> Result<ResponseFrame, ClientError> {
        write_request(&mut self.writer, frame)?;
        self.writer.flush()?;
        self.read_frame()
    }

    fn read_frame(&mut self) -> Result<ResponseFrame, ClientError> {
        read_response(&mut self.reader)?.ok_or(ClientError::Disconnected)
    }
}

/// Dial `addr` honouring the connect deadline, then arm the socket's
/// read/write deadlines.
fn open_stream(addr: SocketAddr, options: &ClientOptions) -> Result<TcpStream, ClientError> {
    let stream = match options.connect_timeout {
        Some(limit) => TcpStream::connect_timeout(&addr, limit).map_err(|e| {
            if is_timeout_io(&e) {
                ClientError::Timeout { what: "connect" }
            } else {
                ClientError::from(e)
            }
        })?,
        None => TcpStream::connect(addr).map_err(ClientError::from)?,
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(options.read_timeout);
    let _ = stream.set_write_timeout(options.write_timeout);
    Ok(stream)
}
