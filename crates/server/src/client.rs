//! The blocking client: one TCP connection speaking the CPD wire
//! protocol, used by the loopback tests, benches and examples — and a
//! reference implementation for clients in other languages.

use cpd_serve::wire::{read_response, write_request, RequestFrame, ResponseFrame, WireError};
use cpd_serve::{HealthStatus, QueryRequest, QueryResponse, ServeDiagnostics};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or codec failure.
    Wire(WireError),
    /// The server answered with a frame-level `Error` (malformed frame
    /// or failed admin operation). Query-level validation errors come
    /// back inside [`QueryResponse::Error`] instead.
    Server(String),
    /// The server answered with a frame class the request cannot
    /// produce (protocol bug on one side).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "client wire failure: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// A blocking connection to a [`Server`](crate::Server).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a running server (Nagle disabled — the protocol is
    /// request/response and frames are already write-buffered).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// One query, one answer.
    pub fn query(&mut self, request: QueryRequest) -> Result<QueryResponse, ClientError> {
        Ok(self
            .query_batch(vec![request])?
            .pop()
            .expect("one response per request"))
    }

    /// Pipeline a batch: every request frame is written before the
    /// first response is read, so the server folds them into one
    /// concurrent `submit_batch` call. Responses come back in request
    /// order.
    ///
    /// A frame-level `Error` arriving in a response slot (e.g. the
    /// server substituting for a response that exceeded the frame
    /// limit) is surfaced **in that slot** as [`QueryResponse::Error`]
    /// — the remaining responses are still read, so the connection
    /// stays in sync for the next call instead of handing later
    /// queries earlier queries' answers.
    pub fn query_batch(
        &mut self,
        requests: Vec<QueryRequest>,
    ) -> Result<Vec<QueryResponse>, ClientError> {
        let n = requests.len();
        for request in requests {
            write_request(&mut self.writer, &RequestFrame::Query(request))?;
        }
        self.writer.flush()?;
        let mut responses = Vec::with_capacity(n);
        for i in 0..n {
            match self.read_frame()? {
                ResponseFrame::Response(r) => responses.push(r),
                ResponseFrame::Error(m) => responses.push(QueryResponse::Error(m)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected response {i} of {n}, got {other:?}"
                    )))
                }
            }
        }
        Ok(responses)
    }

    /// Ask the server to hot-reload its index from a model snapshot at
    /// `path` **on the server's filesystem**; returns the new snapshot
    /// generation.
    pub fn reload(&mut self, path: &str) -> Result<u64, ClientError> {
        match self.round_trip(&RequestFrame::Reload { path: path.into() })? {
            ResponseFrame::Reloaded { generation } => Ok(generation),
            ResponseFrame::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Protocol(format!(
                "expected Reloaded, got {other:?}"
            ))),
        }
    }

    /// Fetch the server's live [`ServeDiagnostics`].
    pub fn stats(&mut self) -> Result<ServeDiagnostics, ClientError> {
        match self.round_trip(&RequestFrame::Stats)? {
            ResponseFrame::Stats(d) => Ok(*d),
            ResponseFrame::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Protocol(format!(
                "expected Stats, got {other:?}"
            ))),
        }
    }

    /// Fetch the server's metrics in Prometheus text exposition format
    /// — per-query-class latency quantiles, trainer sweep spans (when
    /// the fit shared the serve registry), cache and transport
    /// counters. Answered on the connection's reader thread, never
    /// queued behind the query pool, so a scrape works even under full
    /// query load.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.round_trip(&RequestFrame::Metrics)? {
            ResponseFrame::Metrics(text) => Ok(text),
            ResponseFrame::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Protocol(format!(
                "expected Metrics, got {other:?}"
            ))),
        }
    }

    /// Fetch the server's readiness/liveness probe: pool state, live
    /// snapshot generation and uptime. Like [`Client::metrics`], this
    /// is answered inline rather than through the query pool.
    pub fn health(&mut self) -> Result<HealthStatus, ClientError> {
        match self.round_trip(&RequestFrame::Health)? {
            ResponseFrame::Health(h) => Ok(h),
            ResponseFrame::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Protocol(format!(
                "expected Health, got {other:?}"
            ))),
        }
    }

    /// Ask the server to stop accepting connections and drain
    /// (acknowledged before this connection closes).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&RequestFrame::Shutdown)? {
            ResponseFrame::ShuttingDown => Ok(()),
            ResponseFrame::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Protocol(format!(
                "expected ShuttingDown, got {other:?}"
            ))),
        }
    }

    fn round_trip(&mut self, frame: &RequestFrame) -> Result<ResponseFrame, ClientError> {
        write_request(&mut self.writer, frame)?;
        self.writer.flush()?;
        self.read_frame()
    }

    fn read_frame(&mut self) -> Result<ResponseFrame, ClientError> {
        read_response(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection mid-reply".into()))
    }
}
