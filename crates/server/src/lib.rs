//! **cpd-server** — the network front for `cpd-serve`: a long-lived TCP
//! service speaking the [CPD wire protocol](cpd_serve::wire) so
//! community-profiling queries, fold-ins and snapshot hot-reloads no
//! longer require linking the serving library into every caller.
//!
//! The paper's end goal is profiling as a *queryable artifact* —
//! ranking, top-word and diffusion queries answered online — and the
//! interactive community-query workloads in the related literature
//! (e.g. "Exploring Communities in Large Profiled Graphs") need a
//! server that outlives any single client. This crate adds exactly the
//! transport layer, nothing else — all query semantics live in
//! [`cpd_serve`]:
//!
//! * **[`Server`]** — a blocking [`std::net::TcpListener`] accept loop
//!   (pure `std`, no async runtime, works in the offline build) that
//!   spawns one reader thread per connection. Each reader decodes
//!   frames, **batches pipelined requests** — every `Query` frame
//!   already buffered on the socket joins one
//!   [`submit_batch`](cpd_serve::ServeRuntime::submit_batch) call, so a
//!   client that pipelines N queries pays one batch dispatch, not N —
//!   and answers in request order. Admin frames hot-reload the model
//!   snapshot ([`RequestFrame::Reload`](cpd_serve::RequestFrame)),
//!   fetch [`ServeDiagnostics`](cpd_serve::ServeDiagnostics), scrape
//!   the runtime's [`Registry`](cpd_serve::Registry) as Prometheus
//!   text (`Metrics`) or probe readiness (`Health`) — both answered
//!   on the reader thread, never queued behind the query pool — or
//!   start a graceful **drain-then-shutdown** (stop accepting, finish
//!   live connections, join the pool, report final counters). The
//!   transport's own connection/frame counters live in the same
//!   registry (`cpd_server_connections_total`,
//!   `cpd_server_frames_in_total`, `cpd_server_frames_out_total`), so
//!   one scrape covers training spans, query latency, cache and
//!   transport.
//! * **[`Client`]** — the matching blocking connection handle used by
//!   the loopback tests, benches and examples: single queries,
//!   pipelined batches, reload/stats/metrics/health/shutdown admin
//!   calls.
//!
//! Malformed frames are answered with an `Error` frame rather than a
//! dropped connection where the stream stays decodable (garbage inside
//! a well-formed frame); byte-level corruption of the framing itself
//! (bad magic, truncation, oversized length prefixes — the latter
//! rejected before any allocation) gets a best-effort `Error` frame and
//! then the connection closes, since the stream can no longer be
//! trusted.
//!
//! # Loopback in five lines
//!
//! ```
//! use cpd_serve::{ProfileIndex, QueryRequest, QueryResponse, ServeOptions, ServeRuntime};
//! use cpd_server::{Client, Server, ServerOptions};
//! use std::sync::Arc;
//! # use cpd_core::{CpdConfig, CpdModel, Eta};
//! # let model = CpdModel {
//! #     pi: vec![vec![1.0]],
//! #     theta: vec![vec![1.0]],
//! #     phi: vec![vec![0.5, 0.5]],
//! #     eta: Eta::uniform(1, 1),
//! #     nu: vec![0.0; cpd_core::features::N_FEATURES],
//! #     topic_popularity: vec![vec![1.0]],
//! #     doc_community: vec![],
//! #     doc_topic: vec![],
//! # };
//! # let config = CpdConfig::new(1, 1);
//! let index = Arc::new(ProfileIndex::build(model, &config));
//! let runtime = ServeRuntime::new(index, None, ServeOptions::default()).unwrap();
//! let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let answer = client.query(QueryRequest::TopWords { topic: 0, k: 2 }).unwrap();
//! assert!(matches!(answer, QueryResponse::Ranking(_)));
//! let report = server.shutdown();
//! assert_eq!(report.net.connections, 1);
//! ```

pub mod client;
pub mod server;

pub use client::{Client, ClientError, ClientOptions, RetryPolicy};
pub use server::{Server, ServerOptions};
