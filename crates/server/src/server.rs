//! The accept loop and per-connection protocol drivers.
//!
//! Threading model (mirrors the trainer's "spawn once, live forever"
//! idiom): one accept thread owns the [`TcpListener`]; each accepted
//! connection gets a reader thread that decodes frames, feeds the
//! shared [`ServeRuntime`] and writes responses back in request order.
//! The runtime's own worker pool does the actual query work, so a slow
//! connection never blocks another connection's queries — only its own
//! socket.
//!
//! Shutdown is **drain-then-stop**: [`Server::shutdown`] (or a client's
//! `Shutdown` admin frame) flips the stop flag, wakes the accept loop
//! with a loopback connect, and closes the **read** side of every live
//! connection. No new connections or requests are accepted, every
//! request already received is still answered (write sides stay open
//! until the reader threads flush), an idle client cannot hold the
//! drain hostage (blocked reads see EOF; blocked writes to a stalled
//! consumer fail after [`ServerOptions::write_timeout`]), and once
//! every reader thread has exited the runtime is shut down and its
//! final [`ServeDiagnostics`] — including the transport's
//! connection/frame counters — are returned instead of discarded.

use cpd_serve::wire::{
    read_request_versioned, write_response_versioned, RequestFrame, ResponseFrame, WireError,
    WIRE_VERSION,
};
use cpd_serve::{BatchItem, NetStats, QueryResponse, ServeDiagnostics, ServeRuntime};
use cpd_telemetry::{ActiveTrace, Counter, KeepReason};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Most pipelined `Query` frames folded into one `submit_batch`
    /// call (further buffered frames simply form the next batch).
    pub max_batch: usize,
    /// Per-socket write timeout. A client that stops consuming
    /// responses eventually fills the TCP send buffer and would
    /// otherwise block its reader thread in `flush()` forever —
    /// closing its read side (the drain) cannot unblock a write, so
    /// without this cap one stalled client could hang
    /// [`Server::shutdown`]. `None` disables the cap (trusted
    /// clients only).
    pub write_timeout: Option<std::time::Duration>,
    /// Per-socket read timeout. A timeout **between** frames is an
    /// idle (healthy) client and the connection keeps waiting; a
    /// timeout **mid-frame** is a half-dead or slow-loris peer — the
    /// stream can no longer be trusted and the connection is reaped
    /// (counted in `cpd_server_read_timeouts_total`) instead of
    /// pinning its reader thread forever. `None` disables the cap
    /// (trusted clients only).
    pub read_timeout: Option<std::time::Duration>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            max_batch: 128,
            write_timeout: Some(std::time::Duration::from_secs(30)),
            read_timeout: Some(std::time::Duration::from_secs(30)),
        }
    }
}

/// Where to connect to wake a listener blocked in `accept()` out of
/// its loop: the bound address itself — unless it is a wildcard bind
/// (`0.0.0.0` / `::`), which is not connectable on every platform, in
/// which case the loopback of the same family (with the bound port)
/// is used instead.
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    let mut wake = bound;
    if wake.ip().is_unspecified() {
        wake.set_ip(match wake.ip() {
            std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    wake
}

/// State shared by the accept loop, every connection thread and the
/// [`Server`] handle.
struct Shared {
    runtime: ServeRuntime,
    stop: AtomicBool,
    /// The bound address, kept for the self-connect that wakes the
    /// accept loop out of `accept()` at shutdown.
    addr: SocketAddr,
    max_batch: usize,
    write_timeout: Option<std::time::Duration>,
    read_timeout: Option<std::time::Duration>,
    /// Monotonic connection ids for the `streams` drain registry (the
    /// count itself lives in the `connections` registry counter).
    next_conn_id: AtomicU64,
    /// Transport counters, registered in the runtime's
    /// [`Registry`](cpd_serve::Registry) so they show up in the
    /// Prometheus scrape alongside the query-class histograms.
    connections: Counter,
    frames_in: Counter,
    frames_out: Counter,
    /// Connections reaped because a read deadline expired mid-frame
    /// (half-dead peers, slow-loris attempts).
    read_timeouts: Counter,
    /// Reader-thread handles, pushed by the accept loop and joined at
    /// shutdown (the drain).
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// One clone of each **live** connection's socket, keyed by
    /// connection id, so shutdown can close the read sides: every
    /// request already received is still answered (the write sides
    /// stay open until the reader threads flush and exit), but an idle
    /// client can no longer hold the drain hostage. A connection
    /// removes its entry as it exits — the clone would otherwise hold
    /// the fd open and the peer would never see the close.
    streams: Mutex<Vec<(u64, TcpStream)>>,
}

impl Shared {
    fn net(&self) -> NetStats {
        NetStats {
            connections: self.connections.get(),
            frames_in: self.frames_in.get(),
            frames_out: self.frames_out.get(),
        }
    }

    /// Flip the stop flag, poke the accept loop awake and start the
    /// connection drain.
    fn trigger_stop(&self) {
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks in `accept()`; a throwaway connection
        // makes it return so it can observe the flag. `wake_addr`
        // redirects wildcard binds (0.0.0.0 / ::) to the same-family
        // loopback, which is what is actually connectable.
        let _ = TcpStream::connect(wake_addr(self.addr));
        // Close every connection's read side: blocked readers see EOF
        // and exit after answering what they already received.
        let streams = match self.streams.lock() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        for (_, stream) in streams.iter() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }

    /// Drop a finished connection's socket clone (so the fd closes as
    /// soon as its reader thread is done with it).
    fn deregister_stream(&self, conn_id: u64) {
        let mut streams = match self.streams.lock() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        streams.retain(|(id, _)| *id != conn_id);
    }
}

/// A running CPD query server: the accept loop plus the serving
/// runtime behind it.
///
/// Dropping the handle without calling [`Server::shutdown`] or
/// [`Server::join`] stops the accept loop but does **not** block on the
/// drain — the runtime tears down when its last connection thread
/// exits. Prefer the explicit calls; they return the final
/// diagnostics.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port) and start accepting connections over `runtime`.
    pub fn start(
        addr: impl ToSocketAddrs,
        runtime: ServeRuntime,
        options: ServerOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let registry = runtime.registry();
        let connections = registry.counter(
            "cpd_server_connections_total",
            "TCP connections accepted since the server started.",
            &[],
        );
        let frames_in = registry.counter(
            "cpd_server_frames_in_total",
            "Request frames decoded off client sockets.",
            &[],
        );
        let frames_out = registry.counter(
            "cpd_server_frames_out_total",
            "Response frames written back to clients.",
            &[],
        );
        let read_timeouts = registry.counter(
            "cpd_server_read_timeouts_total",
            "Connections reaped because a read deadline expired mid-frame.",
            &[],
        );
        let shared = Arc::new(Shared {
            runtime,
            stop: AtomicBool::new(false),
            addr,
            max_batch: options.max_batch.max(1),
            write_timeout: options.write_timeout,
            read_timeout: options.read_timeout,
            next_conn_id: AtomicU64::new(0),
            connections,
            frames_in,
            frames_out,
            read_timeouts,
            conns: Mutex::new(Vec::new()),
            streams: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.stop.load(Ordering::Acquire) {
                    break; // Includes the shutdown wake-up connect.
                }
                let Ok(stream) = stream else { continue };
                // Without a registered clone the drain could never
                // force-close this connection's read side — refuse to
                // serve it rather than risk a hostage shutdown.
                let Ok(clone) = stream.try_clone() else {
                    continue;
                };
                let conn_id = accept_shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                accept_shared.connections.inc();
                match accept_shared.streams.lock() {
                    Ok(mut streams) => streams.push((conn_id, clone)),
                    Err(poisoned) => poisoned.into_inner().push((conn_id, clone)),
                }
                // A `trigger_stop` racing this accept may have swept
                // `streams` before the push above; re-checking the flag
                // after registering (the mutex orders the two) closes
                // the gap where a late connection would dodge the drain
                // and hang the shutdown join.
                if accept_shared.stop.load(Ordering::Acquire) {
                    let _ = stream.shutdown(std::net::Shutdown::Read);
                }
                let conn_shared = Arc::clone(&accept_shared);
                let handle = std::thread::spawn(move || {
                    serve_connection(&conn_shared, stream);
                    conn_shared.deregister_stream(conn_id);
                });
                let mut conns = match accept_shared.conns.lock() {
                    Ok(conns) => conns,
                    // Nothing panics while holding this lock; recover
                    // rather than propagate.
                    Err(poisoned) => poisoned.into_inner(),
                };
                // Reap finished connections as new ones arrive, so a
                // long-lived server's handle list is bounded by *live*
                // connections, not lifetime ones (dropping a finished
                // handle just detaches an already-exited thread).
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
        });
        Ok(Self {
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (port resolved, for `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The serving runtime behind the listener — e.g. for an
    /// in-process [`reload`](ServeRuntime::reload) from the process
    /// that owns the server, without a wire round trip.
    pub fn runtime(&self) -> &ServeRuntime {
        &self.shared.runtime
    }

    /// Live counters: the runtime's query/cache stats plus this
    /// transport's connection and frame counters.
    pub fn diagnostics(&self) -> ServeDiagnostics {
        let mut d = self.shared.runtime.diagnostics();
        d.net = self.shared.net();
        d
    }

    /// Graceful drain-then-shutdown: stop accepting, answer everything
    /// already received, close the connections, join every thread,
    /// shut the runtime down, and return the final diagnostics.
    pub fn shutdown(mut self) -> ServeDiagnostics {
        self.shared.trigger_stop();
        self.finish()
    }

    /// Wait for a client's `Shutdown` admin frame to trigger the stop,
    /// then drain exactly like [`Server::shutdown`].
    pub fn join(mut self) -> ServeDiagnostics {
        self.finish()
    }

    fn finish(&mut self) -> ServeDiagnostics {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The accept loop has exited, so no new handles can appear.
        let handles = match self.shared.conns.lock() {
            Ok(mut conns) => std::mem::take(&mut *conns),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        };
        for h in handles {
            let _ = h.join();
        }
        // Every frame-producing thread has been joined, so this
        // snapshot is the final account; the runtime's own worker pool
        // is joined when the last `Arc<Shared>` drops (here, as the
        // caller consumed `self`).
        let mut d = self.shared.runtime.diagnostics();
        d.net = self.shared.net();
        d
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shared.trigger_stop();
        }
    }
}

/// One decoded frame plus the instants that bracket its socket read —
/// the trace's `socket_read` span bounds, and the anchor for any wire
/// deadline budget the frame carries (the budget counts from when the
/// server *received* the request, not from whenever a worker gets to
/// it). `read_start` is when the server began waiting on the socket,
/// so the first frame of a quiet connection includes the peer's think
/// time; pipelined frames are already buffered and read back-to-back.
struct ReadFrame {
    frame: RequestFrame,
    version: u8,
    read_start: Instant,
    received: Instant,
}

/// Outcome of one read pass over a connection's socket.
struct ReadBatch {
    /// Decoded frames, in arrival order.
    frames: Vec<ReadFrame>,
    /// A decode failure hit after `frames` (answered, then the
    /// connection closes — framing can no longer be trusted).
    error: Option<WireError>,
    /// The peer closed cleanly after `frames`.
    eof: bool,
    /// The read deadline expired **between** frames: the peer is just
    /// idle, the stream is still synchronized, keep the connection.
    idle: bool,
}

/// Read one blocking frame, then drain every further frame the socket
/// has already buffered (bounded by `max_batch`) — this is what turns a
/// pipelining client's stream into one `submit_batch` call.
fn read_pipelined(reader: &mut BufReader<TcpStream>, max_batch: usize) -> ReadBatch {
    let mut out = ReadBatch {
        frames: Vec::new(),
        error: None,
        eof: false,
        idle: false,
    };
    let read_start = Instant::now();
    match read_request_versioned(reader) {
        Ok(Some((frame, version))) => out.frames.push(ReadFrame {
            frame,
            version,
            read_start,
            received: Instant::now(),
        }),
        Ok(None) => {
            out.eof = true;
            return out;
        }
        Err(WireError::Timeout { mid_frame: false }) => {
            out.idle = true;
            return out;
        }
        Err(e) => {
            out.error = Some(e);
            return out;
        }
    }
    // `buffer()` only reports bytes already pulled off the socket, so
    // these extra reads never block the batch behind a slow sender
    // (except the benign case of a frame split across the buffer
    // boundary, whose tail is already in flight).
    while !reader.buffer().is_empty() && out.frames.len() < max_batch {
        let read_start = Instant::now();
        match read_request_versioned(reader) {
            Ok(Some((frame, version))) => out.frames.push(ReadFrame {
                frame,
                version,
                read_start,
                received: Instant::now(),
            }),
            Ok(None) => {
                out.eof = true;
                break;
            }
            Err(e) => {
                out.error = Some(e);
                break;
            }
        }
    }
    out
}

/// Drive one connection until its client disconnects, the framing
/// breaks, or a shutdown is requested. An acknowledged `Shutdown` frame
/// triggers the stop **whatever exit path follows it** — a client that
/// sends `Shutdown` and slams its socket without reading the ack still
/// gets its drain.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    if drive_connection(shared, stream) {
        shared.trigger_stop();
    }
}

/// The connection protocol loop; returns whether a `Shutdown` admin
/// frame was received.
fn drive_connection(shared: &Shared, stream: TcpStream) -> bool {
    let _ = stream.set_nodelay(true);
    // A stalled consumer fails its writes after this cap instead of
    // pinning the reader thread (and with it the shutdown join).
    let _ = stream.set_write_timeout(shared.write_timeout);
    // A peer that stops sending mid-frame fails its read after this
    // cap (idle between-frame timeouts are tolerated below).
    let _ = stream.set_read_timeout(shared.read_timeout);
    let mut shutdown_requested = false;
    let Ok(read_half) = stream.try_clone() else {
        return shutdown_requested;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    // The server answers in the version its peer speaks: v3 clients
    // get v3 frames (no trace fields), v4 clients get the mirror.
    // Tracked per frame, applied to the responses that follow it.
    let mut peer_version = WIRE_VERSION;
    let mut respond = |writer: &mut BufWriter<TcpStream>, frame: &ResponseFrame, version: u8| {
        shared.frames_out.inc();
        write_response_versioned(writer, frame, version)
    };

    loop {
        let batch = read_pipelined(&mut reader, shared.max_batch);
        shared.frames_in.add(batch.frames.len() as u64);

        // Answer the decoded frames in order, folding consecutive
        // Query frames into single runtime batches.
        let mut queries: Vec<BatchItem> = Vec::new();
        for read in batch.frames {
            peer_version = read.version;
            match read.frame {
                RequestFrame::Query {
                    request,
                    deadline_ms,
                    trace,
                } => {
                    // Anchor the client's remaining-budget at decode
                    // time; the runtime drops the job at dequeue if
                    // the moment has passed.
                    let deadline = deadline_ms
                        .map(|ms| read.received + std::time::Duration::from_millis(u64::from(ms)));
                    let tracer = shared.runtime.tracer();
                    // Three trace postures: adopt a sampled wire
                    // context (span tree shared with the client),
                    // carry an unsampled context's id for tail
                    // forensics, or — for untraced clients — let the
                    // server head-sample at its own edge.
                    let (active, trace_id) = match &trace {
                        Some(ctx) if ctx.sampled => {
                            let t = tracer
                                .adopt(ctx, read.read_start)
                                .expect("sampled context always adopts");
                            t.record_between(
                                "socket_read",
                                ctx.parent_span,
                                read.read_start,
                                read.received,
                            );
                            (Some((t, ctx.parent_span)), None)
                        }
                        Some(ctx) => (None, Some(ctx.trace_id)),
                        None => match tracer.mint(read.read_start) {
                            Some(t) => {
                                t.record_between("socket_read", 0, read.read_start, read.received);
                                (Some((t, 0)), None)
                            }
                            None => (None, None),
                        },
                    };
                    queries.push(BatchItem {
                        request,
                        deadline,
                        trace: active,
                        trace_id,
                    });
                    continue;
                }
                admin => {
                    if !flush_queries(
                        shared,
                        &mut queries,
                        &mut writer,
                        peer_version,
                        &mut respond,
                    ) {
                        return shutdown_requested;
                    }
                    let reply = match admin {
                        RequestFrame::Reload { path } => match shared.runtime.reload(&path) {
                            Ok(generation) => ResponseFrame::Reloaded { generation },
                            Err(e) => ResponseFrame::Error(e),
                        },
                        RequestFrame::Stats => {
                            let mut d = shared.runtime.diagnostics();
                            d.net = shared.net();
                            ResponseFrame::Stats(Box::new(d))
                        }
                        // Metrics, Health and Traces are answered
                        // inline on the reader thread, never queued
                        // behind the query pool — a scrape, liveness
                        // probe or forensic dump must work even when
                        // every worker is busy.
                        RequestFrame::Metrics => {
                            ResponseFrame::Metrics(shared.runtime.prometheus_text())
                        }
                        RequestFrame::Health => ResponseFrame::Health(shared.runtime.health()),
                        RequestFrame::Traces => ResponseFrame::Traces(
                            shared
                                .runtime
                                .tracer()
                                .store()
                                .snapshot()
                                .iter()
                                .map(|t| (**t).clone())
                                .collect(),
                        ),
                        RequestFrame::Shutdown => {
                            shutdown_requested = true;
                            ResponseFrame::ShuttingDown
                        }
                        RequestFrame::Query { .. } => unreachable!("handled above"),
                    };
                    if respond(&mut writer, &reply, peer_version).is_err() {
                        return shutdown_requested;
                    }
                    // No early break on Shutdown: frames pipelined
                    // behind it in the same read are still answered —
                    // the drain contract is "everything received gets
                    // a response".
                }
            }
        }
        if !flush_queries(
            shared,
            &mut queries,
            &mut writer,
            peer_version,
            &mut respond,
        ) {
            return shutdown_requested;
        }

        if let Some(e) = batch.error {
            // A mid-frame read timeout is a half-dead peer being
            // reaped — count it so operators can tell reaps from
            // protocol violations.
            if matches!(e, WireError::Timeout { .. }) {
                shared.read_timeouts.inc();
            }
            // Best-effort: tell the peer why before closing a stream
            // whose framing can no longer be trusted.
            let _ = respond(
                &mut writer,
                &ResponseFrame::Error(e.to_string()),
                peer_version,
            );
            let _ = writer.flush();
            return shutdown_requested;
        }
        if writer.flush().is_err() || shutdown_requested || batch.eof {
            return shutdown_requested;
        }
        // An idle between-frames timeout keeps the connection — unless
        // a drain is in progress, in which case the reader exits now
        // rather than waiting out another timeout window.
        if batch.idle && shared.stop.load(Ordering::Acquire) {
            return shutdown_requested;
        }
    }
}

/// Submit any accumulated queries as one batch and write the answers in
/// request order, recording `encode_write` spans into sampled traces
/// and completing them at the edge (the keep reason derived from the
/// answer: shed → [`KeepReason::Shed`], error → [`KeepReason::Error`],
/// anything else → [`KeepReason::Sampled`], which the tracer upgrades
/// to `Slow` past its threshold). Returns `false` if the socket died.
fn flush_queries(
    shared: &Shared,
    queries: &mut Vec<BatchItem>,
    writer: &mut BufWriter<TcpStream>,
    peer_version: u8,
    respond: &mut impl FnMut(&mut BufWriter<TcpStream>, &ResponseFrame, u8) -> std::io::Result<()>,
) -> bool {
    if queries.is_empty() {
        return true;
    }
    let items = std::mem::take(queries);
    // Keep an edge-side clone of each sampled trace (the runtime
    // consumes the `BatchItem` copy), plus the trace id every response
    // mirrors back — the live trace's own id wins over a carried one.
    type Edge = (Option<(ActiveTrace, u64)>, Option<u64>);
    let edges: Vec<Edge> = items
        .iter()
        .map(|item| {
            let id = item
                .trace
                .as_ref()
                .map(|(t, _)| t.trace_id())
                .or(item.trace_id);
            (item.trace.clone(), id)
        })
        .collect();
    let responses = shared.runtime.submit_batch_items(items);
    let mut alive = true;
    for (response, (edge, trace_id)) in responses.into_iter().zip(edges) {
        let keep = match &response {
            QueryResponse::Overloaded { .. } => KeepReason::Shed,
            QueryResponse::Error(_) => KeepReason::Error,
            _ => KeepReason::Sampled,
        };
        let frame = ResponseFrame::Response { response, trace_id };
        if alive {
            let write_start = edge.as_ref().map(|_| Instant::now());
            alive = respond(writer, &frame, peer_version).is_ok();
            if let (Some((t, parent)), Some(start)) = (&edge, write_start) {
                t.record_between("encode_write", *parent, start, Instant::now());
            }
        }
        // Complete sampled traces even when the socket died mid-batch —
        // the forensics are exactly what explains the dead socket.
        if let Some((t, _)) = &edge {
            shared.runtime.tracer().complete(t, keep);
        }
    }
    alive
}

#[cfg(test)]
mod tests {
    use super::wake_addr;
    use std::net::SocketAddr;

    #[test]
    fn wake_addr_keeps_concrete_binds() {
        let addr: SocketAddr = "127.0.0.1:8080".parse().unwrap();
        assert_eq!(wake_addr(addr), addr);
        let addr: SocketAddr = "[::1]:8080".parse().unwrap();
        assert_eq!(wake_addr(addr), addr);
    }

    #[test]
    fn wake_addr_redirects_wildcard_binds_to_loopback() {
        let v4: SocketAddr = "0.0.0.0:9001".parse().unwrap();
        assert_eq!(wake_addr(v4), "127.0.0.1:9001".parse().unwrap());
        let v6: SocketAddr = "[::]:9002".parse().unwrap();
        assert_eq!(wake_addr(v6), "[::1]:9002".parse().unwrap());
    }
}
