//! Deterministic fault-injection suite: the server under the failure
//! modes production actually serves — bursts past the admission cap,
//! torn TCP streams, half-dead peers, stalled consumers, wildcard
//! binds — driven by `cpd-chaos` (seeded byte-position fault plans, a
//! chaos TCP proxy, named failpoints wired into the worker pool).
//!
//! The contracts under test:
//!
//! * overload **sheds typed** (`QueryResponse::Overloaded`) instead of
//!   growing the queue without bound, and health flips
//!   `Degraded → Ok` once the storm passes;
//! * every admitted request is answered **exactly once, in request
//!   order**, no matter what faults fire around it;
//! * a retrying client **converges** to oracle-correct answers across
//!   injected connection faults and sustained overload;
//! * `Server::shutdown` completes (drain included) even with a
//!   stalled consumer or a wildcard bind.

use cpd_chaos::{ChaosProxy, ConnPlan, Failpoints, FaultPlan};
use cpd_core::{Cpd, CpdConfig};
use cpd_datagen::{generate, GenConfig, Scale};
use cpd_serve::{
    FaultHook, HealthState, ProfileIndex, QueryRequest, QueryResponse, ServeOptions, ServeRuntime,
};
use cpd_server::{Client, ClientError, ClientOptions, RetryPolicy, Server, ServerOptions};
use std::io::Write;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn index(seed: u64) -> Arc<ProfileIndex> {
    let (g, _) = generate(&GenConfig::twitter_like(Scale::Tiny));
    let cfg = CpdConfig {
        em_iters: 2,
        gibbs_sweeps: 1,
        nu_iters: 5,
        seed,
        ..CpdConfig::experiment(3, 4)
    };
    let fit = Cpd::new(cfg.clone()).unwrap().fit(&g);
    Arc::new(ProfileIndex::build(fit.model, &cfg))
}

/// A batch of slot-distinguishable queries: slot `i` asks for topic
/// `i % topics` with `k = 1 + i % 4`, so a misordered or duplicated
/// answer cannot masquerade as the right one.
fn probe_batch(n: usize) -> Vec<QueryRequest> {
    (0..n)
        .map(|i| QueryRequest::TopWords {
            topic: i % 3,
            k: 1 + i % 4,
        })
        .collect()
}

fn probe_oracle(index: &ProfileIndex, n: usize) -> Vec<QueryResponse> {
    (0..n)
        .map(|i| QueryResponse::Ranking(index.top_words(i % 3, 1 + i % 4)))
        .collect()
}

/// Wire a `Failpoints` registry into the runtime's worker pool.
fn hook(points: &Failpoints) -> FaultHook {
    let points = points.clone();
    FaultHook::new(move |point| points.hit(point))
}

fn serve(index: &Arc<ProfileIndex>, options: ServeOptions) -> ServeRuntime {
    ServeRuntime::new(Arc::clone(index), None, options).unwrap()
}

/// Pull `metric` (first sample of the family) out of a Prometheus text
/// scrape.
fn scrape_value(text: &str, metric: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(metric) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
}

/// Overload contract, observed over the wire: a burst past the
/// admission cap is shed with typed `Overloaded` answers (exactly one
/// answer per slot, in order, each executed slot oracle-equal), the
/// shed shows up in `cpd_serve_shed_total` with the health gauge at
/// `Degraded`, and once the burst passes health settles back to `Ok`.
#[test]
fn burst_sheds_then_recovers_with_degraded_health() {
    let index = index(11);
    let points = Failpoints::new();
    // One slow worker + a 2-deep queue: any real burst must shed.
    points.delay("serve.worker_execute", Duration::from_millis(25));
    let runtime = serve(
        &index,
        ServeOptions {
            workers: 1,
            max_queue_depth: 2,
            degraded_window: Duration::from_millis(300),
            fault_hook: Some(hook(&points)),
            ..ServeOptions::default()
        },
    );
    let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();

    let n = 24;
    let mut client = Client::connect_with(
        server.local_addr(),
        ClientOptions {
            retry: None, // observe the shed, don't paper over it
            ..ClientOptions::default()
        },
    )
    .unwrap();
    let responses = client.query_batch(probe_batch(n)).unwrap();
    let oracle = probe_oracle(&index, n);

    assert_eq!(responses.len(), n, "every slot answered exactly once");
    let mut executed = 0u64;
    let mut shed = 0u64;
    for (slot, response) in responses.iter().enumerate() {
        match response {
            QueryResponse::Overloaded { retry_after_ms } => {
                assert!(*retry_after_ms > 0, "hint must be actionable");
                shed += 1;
            }
            executed_answer => {
                // In-order: an executed slot carries *its own* answer.
                assert_eq!(executed_answer, &oracle[slot], "slot {slot} misrouted");
                executed += 1;
            }
        }
    }
    assert!(executed > 0, "the pool still made progress");
    assert!(shed > 0, "a 24-burst into a 2-deep queue must shed");

    // The shed is visible in a wire scrape, alongside Degraded health.
    let text = client.metrics().unwrap();
    let scraped_shed = scrape_value(&text, "cpd_serve_shed_total").unwrap();
    assert!(scraped_shed >= shed as f64, "{scraped_shed} < {shed}");
    assert_eq!(
        scrape_value(&text, "cpd_serve_health_state"),
        Some(1.0),
        "health gauge must read Degraded while inside the window"
    );
    assert_eq!(client.health().unwrap().state, HealthState::Degraded);

    // Storm over: past the hysteresis window the signal settles.
    points.clear("serve.worker_execute");
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(client.health().unwrap().state, HealthState::Ok);
    let text = client.metrics().unwrap();
    assert_eq!(scrape_value(&text, "cpd_serve_health_state"), Some(0.0));

    let report = server.shutdown();
    assert_eq!(report.shed, shed, "diagnostics agree with the wire");
    assert!(points.hits("serve.worker_execute") > 0);
}

/// Transport chaos: a proxy that tears the server→client stream on the
/// first connections. The retrying client reconnects through the
/// faults and converges — every batch oracle-equal, nothing lost or
/// reordered.
#[test]
fn torn_streams_retrying_client_converges() {
    let index = index(23);
    let runtime = serve(&index, ServeOptions::default());
    let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();

    // Connections 0 and 1 die mid-reply (stream torn after 40 bytes of
    // responses); later connections are clean.
    let proxy = ChaosProxy::start(server.local_addr(), |conn| {
        if conn < 2 {
            ConnPlan {
                client_to_server: FaultPlan::clean(),
                server_to_client: FaultPlan::tear_after(40),
            }
        } else {
            ConnPlan::default()
        }
    })
    .unwrap();

    let mut client = Client::connect_with(
        proxy.local_addr(),
        ClientOptions {
            read_timeout: Some(Duration::from_secs(5)),
            retry: Some(RetryPolicy {
                max_retries: 6,
                base_backoff: Duration::from_millis(5),
                ..RetryPolicy::default()
            }),
            ..ClientOptions::default()
        },
    )
    .unwrap();

    let n = 6;
    let oracle = probe_oracle(&index, n);
    for round in 0..3 {
        let responses = client.query_batch(probe_batch(n)).unwrap();
        assert_eq!(responses, oracle, "round {round} must converge to oracle");
    }
    assert!(
        proxy.connections() >= 3,
        "the client reconnected through the torn streams"
    );
    proxy.shutdown();
    server.shutdown();
}

/// Sustained overload with several retrying clients: everyone
/// converges to real answers (the backoff spreads the herd out), while
/// the server demonstrably shed along the way.
#[test]
fn retrying_clients_converge_under_sustained_overload() {
    let index = index(37);
    let points = Failpoints::new();
    points.delay("serve.worker_execute", Duration::from_millis(2));
    let runtime = serve(
        &index,
        ServeOptions {
            workers: 1,
            max_queue_depth: 3,
            fault_hook: Some(hook(&points)),
            ..ServeOptions::default()
        },
    );
    let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();
    let addr = server.local_addr();

    let n = 6;
    let oracle = Arc::new(probe_oracle(&index, n));
    let mut workers = Vec::new();
    for client_id in 0..3u64 {
        let oracle = Arc::clone(&oracle);
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect_with(
                addr,
                ClientOptions {
                    retry: Some(RetryPolicy {
                        max_retries: 12,
                        base_backoff: Duration::from_millis(4),
                        jitter_seed: 0xC0FFEE + client_id,
                        ..RetryPolicy::default()
                    }),
                    ..ClientOptions::default()
                },
            )
            .unwrap();
            for _ in 0..8 {
                let responses = client.query_batch(probe_batch(n)).unwrap();
                assert_eq!(responses, *oracle, "client {client_id} must converge");
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    let report = server.shutdown();
    assert!(
        report.shed > 0,
        "three concurrent clients against a 3-deep queue must shed"
    );
}

/// Deadline enforcement: with the pool pinned slow and a 1 ms request
/// budget, queued work expires and is dropped at dequeue — answered
/// `Overloaded`, counted in `deadline_exceeded`, never executed late.
#[test]
fn expired_deadlines_are_dropped_not_executed() {
    let index = index(41);
    let points = Failpoints::new();
    points.delay("serve.worker_execute", Duration::from_millis(40));
    let runtime = serve(
        &index,
        ServeOptions {
            workers: 1,
            max_queue_depth: 0, // admission off: deadlines alone drop
            fault_hook: Some(hook(&points)),
            ..ServeOptions::default()
        },
    );
    let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();

    let mut client = Client::connect_with(
        server.local_addr(),
        ClientOptions {
            retry: None,
            request_deadline: Some(Duration::from_millis(1)),
            ..ClientOptions::default()
        },
    )
    .unwrap();
    let n = 4;
    let responses = client.query_batch(probe_batch(n)).unwrap();
    assert_eq!(responses.len(), n, "expired slots still get answers");
    let dropped = responses
        .iter()
        .filter(|r| matches!(r, QueryResponse::Overloaded { .. }))
        .count();
    // Slot 0 may beat its deadline to the worker; everything queued
    // behind the 40 ms execution cannot.
    assert!(dropped >= n - 1, "only {dropped}/{n} dropped");

    let report = server.shutdown();
    assert!(report.deadline_exceeded >= (n - 1) as u64);
}

/// A stalled consumer — pipelines thousands of queries, never reads a
/// byte of response — must not hang `Server::shutdown`: the write
/// timeout reaps it, the drain completes, final diagnostics come back.
#[test]
fn stalled_consumer_does_not_hang_shutdown() {
    let index = index(53);
    let runtime = serve(&index, ServeOptions::default());
    let server = Server::start(
        "127.0.0.1:0",
        runtime,
        ServerOptions {
            write_timeout: Some(Duration::from_millis(100)),
            ..ServerOptions::default()
        },
    )
    .unwrap();

    // Raw socket: flood requests, read nothing. Responses fill the
    // kernel buffers until the server's flush blocks.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let mut bytes = Vec::new();
    for request in probe_batch(1).into_iter().cycle().take(20_000) {
        cpd_serve::wire::write_request(
            &mut bytes,
            &cpd_serve::RequestFrame::Query {
                request,
                deadline_ms: None,
                trace: None,
            },
        )
        .unwrap();
    }
    raw.write_all(&bytes).unwrap();
    raw.flush().unwrap();
    // Give the server time to wedge against the full socket.
    std::thread::sleep(Duration::from_millis(300));

    let (tx, rx) = mpsc::channel();
    let watchdog = std::thread::spawn(move || {
        let report = server.shutdown();
        tx.send(report).unwrap();
    });
    let report = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("shutdown must not hang on a stalled consumer");
    watchdog.join().unwrap();
    assert!(report.batches > 0, "the pool served before the stall");
    drop(raw);
}

/// Regression: a server bound to the wildcard address can still wake
/// its own `accept()` loop — shutdown with zero connections must not
/// block on a connect to `0.0.0.0`.
#[test]
fn wildcard_bind_shutdown_does_not_hang() {
    let index = index(59);
    let runtime = serve(&index, ServeOptions::default());
    let server = Server::start("0.0.0.0:0", runtime, ServerOptions::default()).unwrap();
    let (tx, rx) = mpsc::channel();
    let watchdog = std::thread::spawn(move || {
        tx.send(server.shutdown()).unwrap();
    });
    let started = Instant::now();
    rx.recv_timeout(Duration::from_secs(10))
        .expect("wildcard-bound server must wake itself");
    watchdog.join().unwrap();
    assert!(started.elapsed() < Duration::from_secs(10));
}

/// Fault attribution: a failpoint hit by a traced request records
/// *that request's* trace id, so a chaos run can tie every injected
/// fault back to the exact trace that crossed it.
#[test]
fn failpoint_hits_carry_the_trace_id_of_the_crossing_request() {
    let index = index(67);
    let points = Failpoints::new();
    let fp = points.clone();
    let runtime = serve(
        &index,
        ServeOptions {
            workers: 1,
            fault_hook: Some(cpd_serve::FaultHook::new_traced(move |point, trace| {
                fp.hit_traced(point, trace)
            })),
            ..ServeOptions::default()
        },
    );
    let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();

    let mut client = Client::connect_with(
        server.local_addr(),
        ClientOptions {
            trace: cpd_serve::TraceConfig {
                sample_one_in: 1,
                ..cpd_serve::TraceConfig::default()
            },
            ..ClientOptions::default()
        },
    )
    .unwrap();
    let n = 3;
    client.query_batch(probe_batch(n)).unwrap();

    let hit_ids = points.trace_ids("serve.worker_execute");
    assert_eq!(hit_ids.len(), n, "every traced request attributed");
    let local: std::collections::HashSet<u64> = client
        .tracer()
        .store()
        .snapshot()
        .iter()
        .map(|t| t.trace_id)
        .collect();
    assert_eq!(local.len(), n);
    for id in &hit_ids {
        assert!(local.contains(id), "hook saw unknown trace id {id:#x}");
    }
    server.shutdown();
}

/// A half-dead server (accepts, then goes silent mid-frame) surfaces
/// as a typed client timeout, not an eternal hang.
#[test]
fn client_times_out_on_half_dead_server() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let trap = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        // Write half a frame header, then fall silent: the client is
        // now stuck mid-frame.
        conn.write_all(&[0xDF, 0xC9]).unwrap();
        std::thread::sleep(Duration::from_secs(2));
        drop(conn);
    });

    let mut client = Client::connect_with(
        addr,
        ClientOptions {
            read_timeout: Some(Duration::from_millis(200)),
            retry: None,
            ..ClientOptions::default()
        },
    )
    .unwrap();
    let started = Instant::now();
    let err = client
        .query(QueryRequest::TopWords { topic: 0, k: 2 })
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Timeout { .. }),
        "expected a typed timeout, got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "the timeout fired, not the server's eventual close"
    );
    trap.join().unwrap();
}
