//! The acceptance path end to end: a real `cpd-server` on an ephemeral
//! loopback port, every query class over TCP, a hot-reload landing
//! mid-stream under concurrent query traffic without dropping a
//! request, and a fold-in cache hit — all responses oracle-equal to
//! direct [`ProfileIndex`] calls on the matching snapshot generation.

use cpd_core::{io::save_model, Cpd, CpdConfig, UserFeatures};
use cpd_datagen::{generate, GenConfig, Scale};
use cpd_serve::{
    FoldInItem, ProfileIndex, QueryRequest, QueryResponse, Registry, ServeOptions, ServeRuntime,
};
use cpd_server::{Client, ClientError, Server, ServerOptions};
use social_graph::{SocialGraph, UserId, WordId};
use std::io::{Read, Write};
use std::sync::Arc;

fn fit(seed: u64) -> (SocialGraph, CpdConfig, Arc<ProfileIndex>) {
    let (g, _) = generate(&GenConfig::twitter_like(Scale::Tiny));
    let cfg = CpdConfig {
        em_iters: 2,
        gibbs_sweeps: 1,
        nu_iters: 5,
        seed,
        ..CpdConfig::experiment(3, 4)
    };
    let fit = Cpd::new(cfg.clone()).unwrap().fit(&g);
    let index = Arc::new(ProfileIndex::build(fit.model, &cfg));
    (g, cfg, index)
}

/// A generation-revealing probe (used by the reload-under-load phase).
fn probe() -> Vec<QueryRequest> {
    let q = vec![WordId(0), WordId(1), WordId(2)];
    vec![
        QueryRequest::RankCommunities { query: q.clone() },
        QueryRequest::QueryTopics { query: q },
    ]
}

fn probe_oracle(index: &ProfileIndex) -> Vec<QueryResponse> {
    let q = vec![WordId(0), WordId(1), WordId(2)];
    vec![
        QueryResponse::Ranking(index.rank_communities(&q)),
        QueryResponse::Ranking(index.query_topics(&q)),
    ]
}

#[test]
fn loopback_every_query_class_reload_mid_stream_and_cache_hit() {
    let (g, _cfg_a, index_a) = fit(11);
    let (_, _, index_b_src) = fit(5040);
    let features = Arc::new(UserFeatures::compute(&g));

    // The second snapshot the server will hot-reload to, on disk.
    let dir = std::env::temp_dir().join("cpd-server-loopback-test");
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot_b = dir.join("model-b.cpd");
    save_model(index_b_src.model(), &snapshot_b).unwrap();
    // The oracle for generation 2 is built exactly the way the server's
    // reload builds it: the file's model + the live config.
    let index_b = Arc::new(ProfileIndex::build(
        cpd_core::io::load_model(&snapshot_b).unwrap(),
        index_a.config(),
    ));

    let runtime = ServeRuntime::new(
        Arc::clone(&index_a),
        Some(Arc::clone(&features)),
        ServeOptions {
            workers: 4,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();
    let addr = server.local_addr();

    // ---- Phase 1: every query class over TCP, oracle-equal ----------
    let mut client = Client::connect(addr).unwrap();
    let query = vec![WordId(0), WordId(1)];
    let doc_words = g.docs()[0].words.clone();
    let author = g.docs()[0].author;
    let fold_item = FoldInItem::user(vec![doc_words.clone()], vec![UserId(0)]);
    let batch = vec![
        QueryRequest::RankCommunities {
            query: query.clone(),
        },
        QueryRequest::QueryTopics {
            query: query.clone(),
        },
        QueryRequest::TopWords { topic: 1, k: 5 },
        QueryRequest::CommunityTopics { community: 2, k: 3 },
        QueryRequest::PairTopics {
            from: 0,
            to: 1,
            k: 3,
        },
        QueryRequest::UserProfile { user: UserId(3) },
        QueryRequest::FriendshipScore {
            u: UserId(0),
            v: UserId(1),
        },
        QueryRequest::DiffusionScore {
            u: UserId(1),
            v: author,
            words: doc_words.clone(),
            at: 0,
        },
        QueryRequest::FoldIn {
            item: fold_item.clone(),
            seed: 17,
        },
    ];
    let responses = client.query_batch(batch).unwrap();
    assert_eq!(responses.len(), 9, "no request dropped");
    assert_eq!(
        responses[0],
        QueryResponse::Ranking(index_a.rank_communities(&query))
    );
    assert_eq!(
        responses[1],
        QueryResponse::Ranking(index_a.query_topics(&query))
    );
    assert_eq!(
        responses[2],
        QueryResponse::Ranking(index_a.top_words(1, 5))
    );
    assert_eq!(
        responses[3],
        QueryResponse::Ranking(index_a.top_topics_of_community(2, 3))
    );
    assert_eq!(
        responses[4],
        QueryResponse::Ranking(index_a.pair_top_topics(0, 1, 3))
    );
    let membership = index_a.user_membership(UserId(3)).to_vec();
    let dominant = cpd_core::dominant_index(&membership);
    assert_eq!(
        responses[5],
        QueryResponse::Profile {
            membership,
            dominant
        }
    );
    assert_eq!(
        responses[6],
        QueryResponse::Score(index_a.friendship_score(UserId(0), UserId(1)))
    );
    assert_eq!(
        responses[7],
        QueryResponse::Score(index_a.diffusion_score(&features, UserId(1), author, &doc_words, 0))
    );
    assert!(matches!(&responses[8], QueryResponse::FoldedIn(_)));

    // A malformed query travels as a typed per-query Error, not a
    // connection failure.
    let bad = client
        .query(QueryRequest::TopWords { topic: 999, k: 3 })
        .unwrap();
    assert!(matches!(bad, QueryResponse::Error(_)));

    // ---- Phase 2: fold-in cache hit over the wire -------------------
    let again = client
        .query(QueryRequest::FoldIn {
            item: fold_item.clone(),
            seed: 17,
        })
        .unwrap();
    assert_eq!(&again, &responses[8], "cache hit is byte-identical");
    let stats = client.stats().unwrap();
    assert_eq!(stats.generation, 1);
    assert_eq!(stats.cache.hits, 1, "second fold-in hit the cache");
    assert_eq!(stats.cache.misses, 1);
    assert!(stats.net.frames_in >= 12);

    // ---- Phase 3: hot-reload mid-stream under concurrent load -------
    let oracle_a = probe_oracle(&index_a);
    let oracle_b = probe_oracle(&index_b);
    assert_ne!(oracle_a, oracle_b, "fits too similar to distinguish");
    let reload_landed = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hammer = {
        let oracle_a = oracle_a.clone();
        let oracle_b = oracle_b.clone();
        let reload_landed = Arc::clone(&reload_landed);
        std::thread::spawn(move || {
            // Its own connection, streaming probe batches across the
            // swap; every batch is answered in full on one generation.
            let mut c = Client::connect(addr).unwrap();
            let mut batches = 0u64;
            while !reload_landed.load(std::sync::atomic::Ordering::Acquire) {
                let got = c.query_batch(probe()).unwrap();
                assert_eq!(got.len(), 2, "no request dropped across the swap");
                assert!(
                    got == oracle_a || got == oracle_b,
                    "batch matched neither snapshot generation"
                );
                batches += 1;
            }
            // The reload is confirmed live: from here every answer is
            // deterministically the new generation's.
            for _ in 0..3 {
                assert_eq!(c.query_batch(probe()).unwrap(), oracle_b);
            }
            batches
        })
    };
    // Land the reload over the wire while the hammer streams.
    std::thread::sleep(std::time::Duration::from_millis(10));
    let generation = client.reload(snapshot_b.to_str().unwrap()).unwrap();
    assert_eq!(generation, 2);
    // This connection sees the new snapshot on its next query.
    assert_eq!(client.query_batch(probe()).unwrap(), oracle_b);
    reload_landed.store(true, std::sync::atomic::Ordering::Release);
    let hammer_batches = hammer.join().unwrap();
    assert!(hammer_batches > 0, "hammer never streamed across the swap");

    // Post-swap fold-ins recompute (generation-keyed cache) and answer
    // on the new snapshot.
    let post_swap = client
        .query(QueryRequest::FoldIn {
            item: fold_item,
            seed: 17,
        })
        .unwrap();
    assert_ne!(&post_swap, &responses[8], "new snapshot, new profile");
    let stats = client.stats().unwrap();
    assert_eq!(stats.generation, 2);
    assert_eq!(stats.cache.hits, 1, "gen-1 entries are unreachable");
    assert_eq!(stats.cache.misses, 2);

    // A reload of a missing snapshot errors by name and leaves the
    // live generation alone.
    let err = client.reload(dir.join("nope.cpd").to_str().unwrap());
    match err {
        Err(ClientError::Server(m)) => assert!(m.contains("nope.cpd"), "{m}"),
        other => panic!("expected a server error, got {other:?}"),
    }
    assert_eq!(client.stats().unwrap().generation, 2);

    // ---- Phase 4: graceful drain-then-shutdown ----------------------
    client.shutdown_server().unwrap();
    drop(client);
    let report = server.join();
    assert_eq!(report.generation, 2);
    assert_eq!(report.net.connections, 2, "main client + hammer");
    assert!(report.net.frames_in > 0);
    assert!(report.net.frames_out >= report.net.frames_in);
    assert!(report.total_queries() > 0);
    assert_eq!(report.cache.hits, 1);

    std::fs::remove_file(&snapshot_b).ok();
}

/// The observability acceptance path: one [`Registry`] shared by the
/// trainer and the serve runtime, scraped over the wire. `Metrics` and
/// `Health` must answer while the query pool is under load, the
/// generation gauge must move across a hot-reload, and an unknown tag
/// on the same port must still get an `Error` frame — the admin surface
/// does not weaken the framing rules.
#[test]
fn metrics_and_health_over_the_wire_mid_load_and_across_reload() {
    // Fit with telemetry attached: the same registry the server will
    // scrape, so `cpd_fit_*` training series ride along with the
    // serving ones.
    let (g, _) = generate(&GenConfig::twitter_like(Scale::Tiny));
    let cfg = CpdConfig {
        em_iters: 2,
        gibbs_sweeps: 2,
        nu_iters: 5,
        seed: 23,
        ..CpdConfig::experiment(3, 4)
    };
    let registry = Arc::new(Registry::new());
    let fit = Cpd::new(cfg.clone())
        .unwrap()
        .with_telemetry(Arc::clone(&registry))
        .fit(&g);
    let index = Arc::new(ProfileIndex::build(fit.model, &cfg));

    // A second snapshot for the reload phase.
    let dir = std::env::temp_dir().join("cpd-server-metrics-test");
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = dir.join("model.cpd");
    save_model(index.model(), &snapshot).unwrap();

    let runtime = ServeRuntime::new(
        Arc::clone(&index),
        None,
        ServeOptions {
            workers: 2,
            registry: Some(Arc::clone(&registry)),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    // Populate the ranking-class histogram before the first scrape.
    let warmup: Vec<QueryRequest> = (0..8)
        .map(|i| QueryRequest::RankCommunities {
            query: vec![WordId(i), WordId(i + 1)],
        })
        .collect();
    assert_eq!(client.query_batch(warmup).unwrap().len(), 8);

    // ---- Scrape: per-class quantiles AND trainer series -------------
    let text = client.metrics().unwrap();
    for series in [
        // Serving: the ranking class answered queries, so all three
        // quantiles must be present on its series.
        "cpd_serve_query_seconds{class=\"ranking\",quantile=\"0.5\"}",
        "cpd_serve_query_seconds{class=\"ranking\",quantile=\"0.99\"}",
        "cpd_serve_query_seconds{class=\"ranking\",quantile=\"0.999\"}",
        "# TYPE cpd_serve_query_seconds summary",
        "cpd_serve_generation 1",
        // Training: sweep counters and span histograms from the fit
        // that shared this registry.
        "# TYPE cpd_fit_span_seconds summary",
        "cpd_fit_span_seconds_count{span=\"sweep\"} 4",
        "cpd_fit_sweeps_total 4",
        "cpd_fit_em_iteration 2",
        // Transport: the server's own counters live here too.
        "cpd_server_connections_total 1",
    ] {
        assert!(
            text.contains(series),
            "metrics text missing {series:?}:\n{text}"
        );
    }
    let ranking_count: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("cpd_serve_query_seconds_count{class=\"ranking\"} "))
        .expect("ranking count series present")
        .parse()
        .unwrap();
    assert_eq!(ranking_count, 8);

    // ---- Health probe -----------------------------------------------
    let health = client.health().unwrap();
    assert!(health.ready && health.live);
    assert_eq!(health.generation, 1);
    assert!(health.uptime_seconds >= 0.0);

    // ---- Metrics/Health answer mid-load -----------------------------
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hammer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let mut batches = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let batch: Vec<QueryRequest> = (0..16)
                    .map(|i| QueryRequest::TopWords { topic: i % 4, k: 3 })
                    .collect();
                assert_eq!(c.query_batch(batch).unwrap().len(), 16);
                batches += 1;
            }
            batches
        })
    };
    for _ in 0..5 {
        // Admin frames bypass the pool: both must answer while the
        // hammer keeps every worker busy.
        assert!(client
            .metrics()
            .unwrap()
            .contains("cpd_serve_query_seconds"));
        assert!(client.health().unwrap().ready);
    }

    // ---- Hot-reload bumps the generation gauge ----------------------
    let generation = client.reload(snapshot.to_str().unwrap()).unwrap();
    assert_eq!(generation, 2);
    assert_eq!(client.health().unwrap().generation, 2);
    let text = client.metrics().unwrap();
    assert!(text.contains("cpd_serve_generation 2"), "{text}");
    stop.store(true, std::sync::atomic::Ordering::Release);
    assert!(hammer.join().unwrap() > 0);

    // ---- Unknown tag on the same connection family ------------------
    // The new admin tags must not have loosened framing: an unknown tag
    // still gets a named Error frame, then the connection closes.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(&[0xC9, 0xDF, cpd_serve::wire::WIRE_VERSION, 0x7E, 0, 0, 0, 0])
        .unwrap();
    raw.flush().unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    match cpd_serve::wire::read_response(&mut reader).unwrap() {
        Some(cpd_serve::ResponseFrame::Error(m)) => {
            assert!(
                m.contains("tag") || m.contains("0x7e") || m.contains("126"),
                "{m}"
            )
        }
        other => panic!("expected an Error frame, got {other:?}"),
    }
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    client.shutdown_server().unwrap();
    drop(client);
    let report = server.join();
    assert_eq!(report.generation, 2);
    std::fs::remove_file(&snapshot).ok();
}

#[test]
fn garbage_bytes_get_an_error_frame_then_the_connection_closes() {
    let (_, _, index) = fit(3);
    let runtime = ServeRuntime::new(
        index,
        None,
        ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();

    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    raw.flush().unwrap();
    // The server answers with a wire Error frame naming the problem...
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    match cpd_serve::wire::read_response(&mut reader).unwrap() {
        Some(cpd_serve::ResponseFrame::Error(m)) => assert!(m.contains("magic"), "{m}"),
        other => panic!("expected an Error frame, got {other:?}"),
    }
    // ...then closes the stream (it can no longer be framed).
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    // The server survives and serves the next, well-formed connection.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let ok = client
        .query(QueryRequest::TopWords { topic: 0, k: 2 })
        .unwrap();
    assert!(matches!(ok, QueryResponse::Ranking(_)));
    drop(client);
    let report = server.shutdown();
    assert_eq!(report.net.connections, 2);
}

#[test]
fn queries_pipelined_behind_a_shutdown_frame_are_still_answered() {
    let (_, _, index) = fit(13);
    let runtime = ServeRuntime::new(
        index,
        None,
        ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();

    // [Query, Shutdown, Query] in one write: the drain contract says
    // everything received is answered, including the trailing query.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let mut bytes = Vec::new();
    cpd_serve::wire::write_request(
        &mut bytes,
        &cpd_serve::RequestFrame::Query {
            request: QueryRequest::TopWords { topic: 0, k: 2 },
            deadline_ms: None,
            trace: None,
        },
    )
    .unwrap();
    cpd_serve::wire::write_request(&mut bytes, &cpd_serve::RequestFrame::Shutdown).unwrap();
    cpd_serve::wire::write_request(
        &mut bytes,
        &cpd_serve::RequestFrame::Query {
            request: QueryRequest::TopWords { topic: 1, k: 2 },
            deadline_ms: None,
            trace: None,
        },
    )
    .unwrap();
    raw.write_all(&bytes).unwrap();
    raw.flush().unwrap();

    let mut reader = std::io::BufReader::new(raw);
    use cpd_serve::wire::read_response;
    use cpd_serve::ResponseFrame;
    assert!(matches!(
        read_response(&mut reader).unwrap(),
        Some(ResponseFrame::Response {
            response: QueryResponse::Ranking(_),
            ..
        })
    ));
    assert!(matches!(
        read_response(&mut reader).unwrap(),
        Some(ResponseFrame::ShuttingDown)
    ));
    assert!(
        matches!(
            read_response(&mut reader).unwrap(),
            Some(ResponseFrame::Response {
                response: QueryResponse::Ranking(_),
                ..
            })
        ),
        "query behind the Shutdown frame must still be answered"
    );
    drop(reader);
    let report = server.join();
    assert_eq!(report.net.frames_in, 3);
    assert_eq!(report.net.frames_out, 3);
}

#[test]
fn shutdown_frame_from_a_client_that_never_reads_the_ack_still_drains() {
    let (_, _, index) = fit(21);
    let runtime = ServeRuntime::new(
        index,
        None,
        ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();
    {
        // Send Shutdown and slam the socket without reading the ack —
        // the drain must still trigger on every connection exit path.
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let mut bytes = Vec::new();
        cpd_serve::wire::write_request(&mut bytes, &cpd_serve::RequestFrame::Shutdown).unwrap();
        raw.write_all(&bytes).unwrap();
        raw.flush().unwrap();
    } // dropped unread
    let report = server.join(); // must return, not hang
    assert_eq!(report.net.frames_in, 1);
}

#[test]
fn pipelined_frames_fold_into_batches_and_shutdown_reports_final_counters() {
    let (_, _, index) = fit(9);
    let runtime = ServeRuntime::new(
        index,
        None,
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // 32 pipelined queries: written before any response is read, so the
    // server folds buffered frames into shared-queue batches.
    let batch: Vec<QueryRequest> = (0..32)
        .map(|i| QueryRequest::TopWords { topic: i % 4, k: 3 })
        .collect();
    let responses = client.query_batch(batch).unwrap();
    assert_eq!(responses.len(), 32);
    let index = server.runtime().index();
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(r, &QueryResponse::Ranking(index.top_words(i % 4, 3)));
    }
    drop(client);
    let report = server.shutdown();
    assert_eq!(report.net.frames_in, 32);
    assert_eq!(report.net.frames_out, 32);
    assert_eq!(report.top_words.queries, 32);
    assert!(report.queue_high_water >= 1);
    // Fewer dispatches than queries ⇒ pipelining actually batched.
    assert!(
        report.batches <= 32,
        "batches {} should not exceed queries",
        report.batches
    );
}
