//! End-to-end tracing acceptance: one trace id minted by the client
//! links the client's span tree (`client_request` / `send` /
//! `await_response`), the server edge (`socket_read`, `encode_write`),
//! and the worker pool (`queue_wait`, per-class execute spans) — with
//! fold-in forensics down to individual `gibbs_sweep` children on a
//! cache miss and a `fold_cache_hit` span on the warm repeat. Requests
//! nobody head-sampled still leave evidence: sheds, deadline drops,
//! and slow queries are tail-sampled into the server's `TraceStore`
//! and come back over the wire via `Client::traces()`.

use cpd_chaos::Failpoints;
use cpd_core::{Cpd, CpdConfig};
use cpd_datagen::{generate, GenConfig, Scale};
use cpd_serve::{
    FaultHook, FoldInItem, KeepReason, ProfileIndex, QueryRequest, QueryResponse, ServeOptions,
    ServeRuntime, Trace, TraceConfig,
};
use cpd_server::{Client, ClientOptions, Server, ServerOptions};
use social_graph::WordId;
use std::sync::Arc;
use std::time::Duration;

fn index(seed: u64) -> Arc<ProfileIndex> {
    let (g, _) = generate(&GenConfig::twitter_like(Scale::Tiny));
    let cfg = CpdConfig {
        em_iters: 2,
        gibbs_sweeps: 1,
        nu_iters: 5,
        seed,
        ..CpdConfig::experiment(3, 4)
    };
    let fit = Cpd::new(cfg.clone()).unwrap().fit(&g);
    Arc::new(ProfileIndex::build(fit.model, &cfg))
}

fn sampling_client(addr: std::net::SocketAddr) -> Client {
    Client::connect_with(
        addr,
        ClientOptions {
            trace: TraceConfig {
                sample_one_in: 1, // sample every query
                ..TraceConfig::default()
            },
            ..ClientOptions::default()
        },
    )
    .unwrap()
}

fn span_names(trace: &Trace) -> Vec<&str> {
    trace.spans.iter().map(|s| s.name.as_ref()).collect()
}

/// The tentpole acceptance path: a client-minted trace id stitches
/// both sides' dumps together, cold fold-in shows the Gibbs chain,
/// the warm repeat shows the cache hit.
#[test]
fn one_trace_id_links_client_server_and_worker_spans() {
    let index = index(31);
    let runtime = ServeRuntime::new(
        Arc::clone(&index),
        None,
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();
    let mut client = sampling_client(server.local_addr());

    let item = FoldInItem::doc(vec![WordId(0), WordId(1), WordId(2)]);
    let cold = client
        .query(QueryRequest::FoldIn {
            item: item.clone(),
            seed: 9,
        })
        .unwrap();
    assert!(matches!(cold, QueryResponse::FoldedIn(_)));
    let warm = client
        .query(QueryRequest::FoldIn { item, seed: 9 })
        .unwrap();
    assert_eq!(cold, warm, "cache hit answers byte-identically");

    // Client half: both queries sampled, each with the full local tree.
    let local = client.tracer().store().snapshot();
    assert_eq!(local.len(), 2, "both queries head-sampled");
    for t in &local {
        let names = span_names(t);
        for expected in ["client_request", "send", "await_response"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
    }

    // Server half, fetched over the wire. Newest first, so index the
    // pair by content rather than order.
    let remote = client.traces().unwrap();
    for lt in &local {
        let st = remote
            .iter()
            .find(|t| t.trace_id == lt.trace_id)
            .unwrap_or_else(|| panic!("server kept no trace {:#x}", lt.trace_id));
        let names = span_names(st);
        for expected in [
            "socket_read",
            "queue_wait",
            "execute.fold_in",
            "encode_write",
        ] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        // Cross-process parenting: the server's socket_read hangs
        // under the client's root span id, which is absent from the
        // server dump (a segment root by contract).
        let client_root = lt
            .spans
            .iter()
            .find(|s| s.name == "client_request")
            .expect("client root span");
        assert!(
            st.spans.iter().any(|s| s.parent == client_root.id),
            "no server span parents under the client root"
        );
    }

    let miss = remote
        .iter()
        .find(|t| span_names(t).contains(&"fold_cache_miss"))
        .expect("cold query kept with a fold_cache_miss span");
    let miss_names = span_names(miss);
    assert!(miss_names.contains(&"fold_in_gibbs"));
    let gibbs_parent = miss
        .spans
        .iter()
        .find(|s| s.name == "fold_in_gibbs")
        .unwrap();
    let sweeps: Vec<_> = miss
        .spans
        .iter()
        .filter(|s| s.name == "gibbs_sweep")
        .collect();
    assert!(!sweeps.is_empty(), "cache miss ran the Gibbs chain");
    assert!(sweeps.iter().all(|s| s.parent == gibbs_parent.id));

    let hit = remote
        .iter()
        .find(|t| span_names(t).contains(&"fold_cache_hit"))
        .expect("warm query kept with a fold_cache_hit span");
    assert!(
        !span_names(hit).contains(&"gibbs_sweep"),
        "a cache hit must not re-run the chain"
    );

    // The dumps render without panicking and carry the trace id.
    let text = miss.render_text();
    assert!(text.contains("gibbs_sweep"), "{text}");
    assert!(miss.to_json().contains("\"spans\""));

    server.shutdown();
}

/// Nobody sampled these requests, yet the forensics survive: sheds and
/// deadline drops are tail-kept in the server's store with precise
/// keep reasons, retrievable over the wire, and everything executed
/// past a (deliberately zero) slow threshold lands in the slow-query
/// log.
#[test]
fn unsampled_sheds_and_deadline_drops_are_tail_kept() {
    let index = index(47);
    let points = Failpoints::new();
    points.delay("serve.worker_execute", Duration::from_millis(30));
    let fp = points.clone();
    let runtime = ServeRuntime::new(
        Arc::clone(&index),
        None,
        ServeOptions {
            workers: 1,
            max_queue_depth: 2,
            fault_hook: Some(FaultHook::new_traced(move |point, trace| {
                fp.hit_traced(point, trace)
            })),
            trace: TraceConfig {
                // Head-sample nothing; keep everything slow. Every
                // executed request exceeds a zero threshold, so the
                // slow log fills without any sampling decision.
                sample_one_in: 0,
                slow_threshold: Duration::from_nanos(1),
                ..TraceConfig::default()
            },
            ..ServeOptions::default()
        },
    )
    .unwrap();
    // Keep a handle on the server-side store before the runtime moves.
    let tracer = Arc::clone(runtime.tracer());
    let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();

    // Untraced client, no retries, 25 ms wire deadline: the burst
    // overflows the 2-deep queue (sheds) and whatever queues behind
    // the 30 ms worker dies at dequeue (deadline drops).
    let mut client = Client::connect_with(
        server.local_addr(),
        ClientOptions {
            retry: None,
            request_deadline: Some(Duration::from_millis(25)),
            ..ClientOptions::default()
        },
    )
    .unwrap();
    let n = 12;
    let batch = (0..n)
        .map(|i| QueryRequest::TopWords {
            topic: i % 3,
            k: 1 + i % 4,
        })
        .collect();
    let responses = client.query_batch(batch).unwrap();
    assert_eq!(responses.len(), n);
    let shed = responses
        .iter()
        .filter(|r| matches!(r, QueryResponse::Overloaded { .. }))
        .count();
    assert!(shed > 0, "the burst must overflow a 2-deep queue");

    // The wire surface: tail-kept traces come back via the admin frame.
    let remote = client.traces().unwrap();
    assert!(
        remote.iter().any(|t| t.keep == KeepReason::Shed),
        "no shed trace kept: {:?}",
        remote.iter().map(|t| t.keep).collect::<Vec<_>>()
    );
    assert!(
        remote
            .iter()
            .any(|t| t.keep == KeepReason::DeadlineExceeded),
        "no deadline-drop trace kept: {:?}",
        remote.iter().map(|t| t.keep).collect::<Vec<_>>()
    );
    assert!(
        remote.iter().any(|t| t.keep == KeepReason::Slow),
        "executed requests past the zero threshold must be slow-kept"
    );
    // Tail-kept traces are synthetic single-span records naming the
    // query class — enough to answer "what was shed".
    let shed_trace = remote.iter().find(|t| t.keep == KeepReason::Shed).unwrap();
    assert_eq!(shed_trace.root_name(), "top_words");

    // Server-side forensics read the same store directly.
    let slow = tracer.store().slow_log(5);
    assert!(!slow.is_empty());
    assert!(
        slow.windows(2)
            .all(|w| w[0].duration_nanos >= w[1].duration_nanos),
        "slow log is duration-sorted"
    );
    let rendered = tracer.store().render_slow_log(5);
    assert!(rendered.contains("keep="), "{rendered}");

    // Untraced requests never reached the hook with a trace id.
    assert!(points.trace_ids("serve.worker_execute").is_empty());

    server.shutdown();
}
