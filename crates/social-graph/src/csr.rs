//! A minimal compressed-sparse-row adjacency container.
//!
//! Stores, for each of `n` nodes, a contiguous slice of `u32` payloads
//! (neighbour ids or link ids). Built once from an edge list; lookups are
//! two loads and a slice.

/// CSR adjacency: `values[offsets[i]..offsets[i+1]]` are node `i`'s items.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Csr {
    offsets: Vec<u32>,
    values: Vec<u32>,
}

impl Csr {
    /// Build from `(node, payload)` pairs over `n` nodes.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut counts = vec![0u32; n + 1];
        let pairs: Vec<(u32, u32)> = pairs.into_iter().collect();
        for &(node, _) in &pairs {
            debug_assert!((node as usize) < n, "CSR node {node} out of range {n}");
            counts[node as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut values = vec![0u32; pairs.len()];
        for (node, payload) in pairs {
            let slot = cursor[node as usize];
            values[slot as usize] = payload;
            cursor[node as usize] += 1;
        }
        Self { offsets, values }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload slice for `node`.
    #[inline]
    pub fn row(&self, node: usize) -> &[u32] {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        &self.values[lo..hi]
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: usize) -> usize {
        (self.offsets[node + 1] - self.offsets[node]) as usize
    }

    /// Total number of stored items.
    pub fn total(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_rows_in_insertion_order() {
        let csr = Csr::from_pairs(3, vec![(0, 10), (2, 20), (0, 11), (2, 21), (2, 22)]);
        assert_eq!(csr.row(0), &[10, 11]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row(2), &[20, 21, 22]);
        assert_eq!(csr.degree(2), 3);
        assert_eq!(csr.total(), 5);
        assert_eq!(csr.len(), 3);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_pairs(0, vec![]);
        assert_eq!(csr.len(), 0);
        assert!(csr.is_empty());
    }
}
