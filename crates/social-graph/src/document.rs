//! User-published documents (tweets, paper titles, …).

use crate::ids::{UserId, WordId};

/// A document `d_ui`: author, bag of word tokens (with repetition, in
/// order) and a discrete timestamp (epoch bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Document {
    /// Publishing user `u`.
    pub author: UserId,
    /// Token sequence; repetitions matter for the topic model counts.
    pub words: Vec<WordId>,
    /// Discrete publication time (bucket index, dataset-defined).
    pub timestamp: u32,
}

impl Document {
    /// Construct a document.
    pub fn new(author: UserId, words: Vec<WordId>, timestamp: u32) -> Self {
        Self {
            author,
            words,
            timestamp,
        }
    }

    /// Number of tokens `|W_ui|`.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the document has no tokens.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let d = Document::new(UserId(1), vec![WordId(0), WordId(2), WordId(0)], 5);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.author, UserId(1));
        assert_eq!(d.timestamp, 5);
    }
}
