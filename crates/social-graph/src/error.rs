//! Construction-time validation errors.

use std::fmt;

/// Why a [`crate::SocialGraphBuilder`] rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A document referenced an author index `>= n_users`.
    AuthorOutOfRange {
        doc: usize,
        author: u32,
        n_users: usize,
    },
    /// A document contained a word index `>= vocab_size`.
    WordOutOfRange { doc: usize, word: u32, vocab: usize },
    /// A friendship link referenced a user index `>= n_users`.
    FriendEndpointOutOfRange { link: usize, user: u32 },
    /// A friendship self-loop `(u, u)`.
    FriendSelfLoop { user: u32 },
    /// A diffusion link referenced a document index `>= n_docs`.
    DiffusionEndpointOutOfRange { link: usize, doc: u32 },
    /// A diffusion self-loop `(i, i)`.
    DiffusionSelfLoop { doc: u32 },
    /// The graph has zero users.
    NoUsers,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::AuthorOutOfRange {
                doc,
                author,
                n_users,
            } => write!(
                f,
                "document {doc} has author {author} but the graph has {n_users} users"
            ),
            GraphError::WordOutOfRange { doc, word, vocab } => write!(
                f,
                "document {doc} contains word {word} but the vocabulary has {vocab} entries"
            ),
            GraphError::FriendEndpointOutOfRange { link, user } => {
                write!(f, "friendship link {link} references unknown user {user}")
            }
            GraphError::FriendSelfLoop { user } => {
                write!(f, "friendship self-loop on user {user}")
            }
            GraphError::DiffusionEndpointOutOfRange { link, doc } => {
                write!(f, "diffusion link {link} references unknown document {doc}")
            }
            GraphError::DiffusionSelfLoop { doc } => {
                write!(f, "diffusion self-loop on document {doc}")
            }
            GraphError::NoUsers => write!(f, "a social graph needs at least one user"),
        }
    }
}

impl std::error::Error for GraphError {}
