//! The immutable social graph and its validating builder.

use crate::csr::Csr;
use crate::document::Document;
use crate::error::GraphError;
use crate::ids::{DocId, UserId};
use crate::stats::GraphStats;

/// A directed friendship link `F_uv` (u follows v / u co-authors with v).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FriendshipLink {
    /// Source user `u`.
    pub from: UserId,
    /// Target user `v`.
    pub to: UserId,
}

/// A directed, timestamped diffusion link `E^t_ij`: document `src`
/// diffuses (retweets / cites) document `dst` at time `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiffusionLink {
    /// The diffusing (new) document `i`.
    pub src: DocId,
    /// The diffused (original) document `j`.
    pub dst: DocId,
    /// Diffusion timestamp `t` (bucket index).
    pub at: u32,
}

/// Immutable social graph `G = (U, D, F, E)` with precomputed
/// neighbourhood indices.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SocialGraph {
    n_users: usize,
    vocab_size: usize,
    n_timestamps: u32,
    docs: Vec<Document>,
    user_docs: Csr,
    friendships: Vec<FriendshipLink>,
    friend_neighbors: Csr,
    friend_incident: Csr,
    diffusions: Vec<DiffusionLink>,
    diffusion_incident: Csr,
    out_degree: Vec<u32>,
    in_degree: Vec<u32>,
}

impl SocialGraph {
    /// Number of users `|U|`.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Vocabulary size `|W|`.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Number of discrete time buckets (max timestamp + 1).
    pub fn n_timestamps(&self) -> u32 {
        self.n_timestamps
    }

    /// All documents `D`.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// Number of documents `|D|`.
    pub fn n_docs(&self) -> usize {
        self.docs.len()
    }

    /// A document by id.
    #[inline]
    pub fn doc(&self, id: DocId) -> &Document {
        &self.docs[id.index()]
    }

    /// Documents published by `u` (as doc ids).
    pub fn docs_of(&self, u: UserId) -> impl Iterator<Item = DocId> + '_ {
        self.user_docs.row(u.index()).iter().map(|&d| DocId(d))
    }

    /// Number of documents published by `u`.
    pub fn n_docs_of(&self, u: UserId) -> usize {
        self.user_docs.degree(u.index())
    }

    /// All friendship links `F`.
    pub fn friendships(&self) -> &[FriendshipLink] {
        &self.friendships
    }

    /// All diffusion links `E`.
    pub fn diffusions(&self) -> &[DiffusionLink] {
        &self.diffusions
    }

    /// `Λ_u`: friendship neighbours of `u`, both directions, as user ids
    /// (parallel to [`SocialGraph::friend_links_of`]).
    pub fn friend_neighbors_of(&self, u: UserId) -> impl Iterator<Item = UserId> + '_ {
        self.friend_neighbors
            .row(u.index())
            .iter()
            .map(|&v| UserId(v))
    }

    /// Friendship link ids incident to `u` (both directions), parallel to
    /// [`SocialGraph::friend_neighbors_of`].
    pub fn friend_links_of(&self, u: UserId) -> &[u32] {
        self.friend_incident.row(u.index())
    }

    /// Friendship degree of `u` (in + out).
    pub fn friend_degree(&self, u: UserId) -> usize {
        self.friend_neighbors.degree(u.index())
    }

    /// `Λ_i`: diffusion link ids incident to document `i` (both
    /// directions).
    pub fn diffusion_links_of(&self, d: DocId) -> &[u32] {
        self.diffusion_incident.row(d.index())
    }

    /// Out-degree of `u` in `F` (the paper's "followees" count).
    pub fn followees(&self, u: UserId) -> u32 {
        self.out_degree[u.index()]
    }

    /// In-degree of `u` in `F` (the paper's "followers" count).
    pub fn followers(&self, u: UserId) -> u32 {
        self.in_degree[u.index()]
    }

    /// Total token count over all documents.
    pub fn n_tokens(&self) -> usize {
        self.docs.iter().map(Document::len).sum()
    }

    /// Summary statistics (Table 3 of the paper).
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            n_users: self.n_users,
            n_docs: self.docs.len(),
            vocab_size: self.vocab_size,
            n_tokens: self.n_tokens(),
            n_friendship_links: self.friendships.len(),
            n_diffusion_links: self.diffusions.len(),
            n_timestamps: self.n_timestamps,
        }
    }

    /// Rebuild this graph keeping only friendship links whose index passes
    /// `keep` (used by the cross-validation splitter).
    pub fn retain_friendships(&self, keep: impl Fn(usize) -> bool) -> SocialGraph {
        let friendships: Vec<FriendshipLink> = self
            .friendships
            .iter()
            .enumerate()
            .filter(|(i, _)| keep(*i))
            .map(|(_, &l)| l)
            .collect();
        Self::assemble(
            self.n_users,
            self.vocab_size,
            self.docs.clone(),
            friendships,
            self.diffusions.clone(),
        )
    }

    /// Rebuild this graph keeping only diffusion links whose index passes
    /// `keep`.
    pub fn retain_diffusions(&self, keep: impl Fn(usize) -> bool) -> SocialGraph {
        let diffusions: Vec<DiffusionLink> = self
            .diffusions
            .iter()
            .enumerate()
            .filter(|(i, _)| keep(*i))
            .map(|(_, &l)| l)
            .collect();
        Self::assemble(
            self.n_users,
            self.vocab_size,
            self.docs.clone(),
            self.friendships.clone(),
            diffusions,
        )
    }

    pub(crate) fn assemble(
        n_users: usize,
        vocab_size: usize,
        docs: Vec<Document>,
        friendships: Vec<FriendshipLink>,
        diffusions: Vec<DiffusionLink>,
    ) -> SocialGraph {
        let user_docs = Csr::from_pairs(
            n_users,
            docs.iter().enumerate().map(|(i, d)| (d.author.0, i as u32)),
        );
        let friend_neighbors = Csr::from_pairs(
            n_users,
            friendships
                .iter()
                .flat_map(|l| [(l.from.0, l.to.0), (l.to.0, l.from.0)]),
        );
        let friend_incident = Csr::from_pairs(
            n_users,
            friendships
                .iter()
                .enumerate()
                .flat_map(|(i, l)| [(l.from.0, i as u32), (l.to.0, i as u32)]),
        );
        let diffusion_incident = Csr::from_pairs(
            docs.len(),
            diffusions
                .iter()
                .enumerate()
                .flat_map(|(i, l)| [(l.src.0, i as u32), (l.dst.0, i as u32)]),
        );
        let mut out_degree = vec![0u32; n_users];
        let mut in_degree = vec![0u32; n_users];
        for l in &friendships {
            out_degree[l.from.index()] += 1;
            in_degree[l.to.index()] += 1;
        }
        let n_timestamps = docs
            .iter()
            .map(|d| d.timestamp)
            .chain(diffusions.iter().map(|l| l.at))
            .max()
            .map_or(1, |t| t + 1);
        SocialGraph {
            n_users,
            vocab_size,
            n_timestamps,
            docs,
            user_docs,
            friendships,
            friend_neighbors,
            friend_incident,
            diffusions,
            diffusion_incident,
            out_degree,
            in_degree,
        }
    }
}

/// Validating builder for [`SocialGraph`].
#[derive(Debug, Default)]
pub struct SocialGraphBuilder {
    n_users: usize,
    vocab_size: usize,
    docs: Vec<Document>,
    friendships: Vec<FriendshipLink>,
    diffusions: Vec<DiffusionLink>,
}

impl SocialGraphBuilder {
    /// Start a graph over `n_users` users and a vocabulary of
    /// `vocab_size` words.
    pub fn new(n_users: usize, vocab_size: usize) -> Self {
        Self {
            n_users,
            vocab_size,
            ..Default::default()
        }
    }

    /// Add a document; returns its id.
    pub fn add_document(&mut self, doc: Document) -> DocId {
        let id = DocId(self.docs.len() as u32);
        self.docs.push(doc);
        id
    }

    /// Add a directed friendship link `u → v`.
    pub fn add_friendship(&mut self, from: UserId, to: UserId) {
        self.friendships.push(FriendshipLink { from, to });
    }

    /// Add a diffusion link: document `src` diffuses `dst` at time `at`.
    pub fn add_diffusion(&mut self, src: DocId, dst: DocId, at: u32) {
        self.diffusions.push(DiffusionLink { src, dst, at });
    }

    /// Current number of documents added.
    pub fn n_docs(&self) -> usize {
        self.docs.len()
    }

    /// A document already added to the builder (panics on bad id).
    pub fn doc(&self, id: DocId) -> &Document {
        &self.docs[id.index()]
    }

    /// Validate and build.
    pub fn build(self) -> Result<SocialGraph, GraphError> {
        if self.n_users == 0 {
            return Err(GraphError::NoUsers);
        }
        for (i, d) in self.docs.iter().enumerate() {
            if d.author.index() >= self.n_users {
                return Err(GraphError::AuthorOutOfRange {
                    doc: i,
                    author: d.author.0,
                    n_users: self.n_users,
                });
            }
            if let Some(w) = d.words.iter().find(|w| w.index() >= self.vocab_size) {
                return Err(GraphError::WordOutOfRange {
                    doc: i,
                    word: w.0,
                    vocab: self.vocab_size,
                });
            }
        }
        for (i, l) in self.friendships.iter().enumerate() {
            if l.from.index() >= self.n_users || l.to.index() >= self.n_users {
                let user = if l.from.index() >= self.n_users {
                    l.from.0
                } else {
                    l.to.0
                };
                return Err(GraphError::FriendEndpointOutOfRange { link: i, user });
            }
            if l.from == l.to {
                return Err(GraphError::FriendSelfLoop { user: l.from.0 });
            }
        }
        for (i, l) in self.diffusions.iter().enumerate() {
            if l.src.index() >= self.docs.len() || l.dst.index() >= self.docs.len() {
                let doc = if l.src.index() >= self.docs.len() {
                    l.src.0
                } else {
                    l.dst.0
                };
                return Err(GraphError::DiffusionEndpointOutOfRange { link: i, doc });
            }
            if l.src == l.dst {
                return Err(GraphError::DiffusionSelfLoop { doc: l.src.0 });
            }
        }
        Ok(SocialGraph::assemble(
            self.n_users,
            self.vocab_size,
            self.docs,
            self.friendships,
            self.diffusions,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::WordId;

    fn tiny() -> SocialGraph {
        let mut b = SocialGraphBuilder::new(3, 5);
        let d0 = b.add_document(Document::new(UserId(0), vec![WordId(0), WordId(1)], 0));
        let d1 = b.add_document(Document::new(UserId(1), vec![WordId(2)], 1));
        let d2 = b.add_document(Document::new(UserId(1), vec![WordId(3), WordId(4)], 2));
        b.add_friendship(UserId(0), UserId(1));
        b.add_friendship(UserId(1), UserId(2));
        b.add_diffusion(d2, d0, 2);
        b.add_diffusion(d1, d0, 1);
        b.build().expect("valid graph")
    }

    #[test]
    fn neighbourhoods_are_bidirectional() {
        let g = tiny();
        let n1: Vec<UserId> = g.friend_neighbors_of(UserId(1)).collect();
        assert_eq!(n1, vec![UserId(0), UserId(2)]);
        assert_eq!(g.friend_degree(UserId(1)), 2);
        assert_eq!(g.friend_links_of(UserId(0)), &[0]);
        assert_eq!(g.friend_links_of(UserId(2)), &[1]);
    }

    #[test]
    fn diffusion_incidence_covers_both_ends() {
        let g = tiny();
        assert_eq!(g.diffusion_links_of(DocId(0)), &[0, 1]);
        assert_eq!(g.diffusion_links_of(DocId(2)), &[0]);
        assert_eq!(g.diffusion_links_of(DocId(1)), &[1]);
    }

    #[test]
    fn degrees_and_docs_per_user() {
        let g = tiny();
        assert_eq!(g.followers(UserId(1)), 1);
        assert_eq!(g.followees(UserId(1)), 1);
        assert_eq!(g.n_docs_of(UserId(1)), 2);
        let docs: Vec<DocId> = g.docs_of(UserId(1)).collect();
        assert_eq!(docs, vec![DocId(1), DocId(2)]);
        assert_eq!(g.n_docs_of(UserId(2)), 0);
    }

    #[test]
    fn timestamps_inferred_from_max() {
        let g = tiny();
        assert_eq!(g.n_timestamps(), 3);
        assert_eq!(g.n_tokens(), 5);
    }

    #[test]
    fn rejects_out_of_range_author() {
        let mut b = SocialGraphBuilder::new(1, 2);
        b.add_document(Document::new(UserId(5), vec![WordId(0)], 0));
        assert!(matches!(
            b.build(),
            Err(GraphError::AuthorOutOfRange { author: 5, .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_word() {
        let mut b = SocialGraphBuilder::new(1, 2);
        b.add_document(Document::new(UserId(0), vec![WordId(9)], 0));
        assert!(matches!(
            b.build(),
            Err(GraphError::WordOutOfRange { word: 9, .. })
        ));
    }

    #[test]
    fn rejects_friend_self_loop_and_bad_endpoint() {
        let mut b = SocialGraphBuilder::new(2, 1);
        b.add_friendship(UserId(0), UserId(0));
        assert!(matches!(
            b.build(),
            Err(GraphError::FriendSelfLoop { user: 0 })
        ));

        let mut b = SocialGraphBuilder::new(2, 1);
        b.add_friendship(UserId(0), UserId(7));
        assert!(matches!(
            b.build(),
            Err(GraphError::FriendEndpointOutOfRange { user: 7, .. })
        ));
    }

    #[test]
    fn rejects_bad_diffusion_links() {
        let mut b = SocialGraphBuilder::new(1, 1);
        let d = b.add_document(Document::new(UserId(0), vec![WordId(0)], 0));
        b.add_diffusion(d, DocId(9), 0);
        assert!(matches!(
            b.build(),
            Err(GraphError::DiffusionEndpointOutOfRange { doc: 9, .. })
        ));

        let mut b = SocialGraphBuilder::new(1, 1);
        let d = b.add_document(Document::new(UserId(0), vec![WordId(0)], 0));
        b.add_diffusion(d, d, 0);
        assert!(matches!(
            b.build(),
            Err(GraphError::DiffusionSelfLoop { doc: 0 })
        ));
    }

    #[test]
    fn rejects_empty_user_set() {
        let b = SocialGraphBuilder::new(0, 1);
        assert!(matches!(b.build(), Err(GraphError::NoUsers)));
    }

    #[test]
    fn retain_friendships_drops_links() {
        let g = tiny();
        let g2 = g.retain_friendships(|i| i != 0);
        assert_eq!(g2.friendships().len(), 1);
        assert_eq!(g2.friend_degree(UserId(0)), 0);
        // Docs and diffusions untouched.
        assert_eq!(g2.n_docs(), 3);
        assert_eq!(g2.diffusions().len(), 2);
    }

    #[test]
    fn retain_diffusions_drops_links() {
        let g = tiny();
        let g2 = g.retain_diffusions(|i| i == 1);
        assert_eq!(g2.diffusions().len(), 1);
        assert_eq!(g2.diffusions()[0].src, DocId(1));
        assert_eq!(g2.friendships().len(), 2);
    }

    #[test]
    fn stats_match_contents() {
        let s = tiny().stats();
        assert_eq!(s.n_users, 3);
        assert_eq!(s.n_docs, 3);
        assert_eq!(s.n_friendship_links, 2);
        assert_eq!(s.n_diffusion_links, 2);
        assert_eq!(s.n_tokens, 5);
        assert_eq!(s.vocab_size, 5);
    }
}
