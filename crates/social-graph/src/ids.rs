//! Typed index newtypes.
//!
//! All entities are dense `u32` indices; the newtypes prevent the classic
//! "passed a doc id where a user id was expected" bug without costing
//! anything at runtime.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a `usize` array index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                debug_assert!(v <= u32::MAX as usize);
                $name(v as u32)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(v: $name) -> usize {
                v.index()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// A user `u ∈ U`.
    UserId
);
id_type!(
    /// A document `d ∈ D`.
    DocId
);
id_type!(
    /// A vocabulary word `w ∈ {1..|W|}`.
    WordId
);
id_type!(
    /// A community `c ∈ {1..|C|}` (model-side index).
    CommunityId
);
id_type!(
    /// A topic `z ∈ {1..|Z|}` (model-side index).
    TopicId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_ordering() {
        let u = UserId::from(7usize);
        assert_eq!(u.index(), 7);
        assert_eq!(usize::from(u), 7);
        assert!(UserId(1) < UserId(2));
        assert_eq!(format!("{}", DocId(3)), "DocId(3)");
    }
}
