//! Social graph substrate for the CPD reproduction.
//!
//! Implements Definition 1 of the paper: a social graph
//! `G = (U, D, F, E)` where `U` are users, `D` user-published documents,
//! `F` directed friendship links between users and `E` directed,
//! timestamped diffusion links between documents (document `i` retweets /
//! cites document `j`).
//!
//! The [`SocialGraph`] is immutable after construction (via
//! [`SocialGraphBuilder`], which validates endpoints) and exposes the
//! neighbourhood views the Gibbs samplers need: `Λ_u` (friendship
//! neighbours of a user, both directions) and `Λ_i` (diffusion links
//! incident to a document, both directions).

pub mod csr;
pub mod document;
pub mod error;
pub mod graph;
pub mod ids;
pub mod sample;
pub mod split;
pub mod stats;

pub use document::Document;
pub use error::GraphError;
pub use graph::{DiffusionLink, FriendshipLink, SocialGraph, SocialGraphBuilder};
pub use ids::{CommunityId, DocId, TopicId, UserId, WordId};
pub use stats::GraphStats;
