//! Random subsampling of a graph, used by the scalability experiment
//! (Fig. 10(a): per-iteration training time vs. dataset fraction `p`).
//!
//! Following the paper, a fraction `p` of the documents, friendship links
//! and diffusion links is sampled; diffusion links additionally require
//! both endpoint documents to survive.

use crate::document::Document;
use crate::graph::{DiffusionLink, FriendshipLink, SocialGraph};
use cpd_prob::rng::seeded_rng;
use rand::Rng;

/// Sample a `frac ∈ (0, 1]` sub-graph of `g`, deterministically from
/// `seed`. Users and vocabulary are kept as-is (ids stay stable); document
/// ids are remapped densely.
pub fn subsample(g: &SocialGraph, frac: f64, seed: u64) -> SocialGraph {
    assert!(frac > 0.0 && frac <= 1.0, "fraction must be in (0, 1]");
    let mut rng = seeded_rng(seed);

    // Documents.
    let mut doc_map: Vec<Option<u32>> = vec![None; g.n_docs()];
    let mut docs: Vec<Document> = Vec::with_capacity((g.n_docs() as f64 * frac) as usize + 1);
    for (i, d) in g.docs().iter().enumerate() {
        if frac >= 1.0 || rng.gen::<f64>() < frac {
            doc_map[i] = Some(docs.len() as u32);
            docs.push(d.clone());
        }
    }

    // Friendship links.
    let friendships: Vec<FriendshipLink> = g
        .friendships()
        .iter()
        .filter(|_| frac >= 1.0 || rng.gen::<f64>() < frac)
        .copied()
        .collect();

    // Diffusion links: endpoints must survive, then thin by `frac`.
    let diffusions: Vec<DiffusionLink> = g
        .diffusions()
        .iter()
        .filter_map(|l| {
            let src = doc_map[l.src.index()]?;
            let dst = doc_map[l.dst.index()]?;
            if frac >= 1.0 || rng.gen::<f64>() < frac {
                Some(DiffusionLink {
                    src: crate::ids::DocId(src),
                    dst: crate::ids::DocId(dst),
                    at: l.at,
                })
            } else {
                None
            }
        })
        .collect();

    SocialGraph::assemble(g.n_users(), g.vocab_size(), docs, friendships, diffusions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SocialGraphBuilder;
    use crate::ids::{UserId, WordId};

    fn grid_graph(n_users: usize, docs_per_user: usize) -> SocialGraph {
        let mut b = SocialGraphBuilder::new(n_users, 10);
        for u in 0..n_users {
            for i in 0..docs_per_user {
                b.add_document(Document::new(
                    UserId(u as u32),
                    vec![WordId((i % 10) as u32)],
                    i as u32,
                ));
            }
        }
        for u in 0..n_users - 1 {
            b.add_friendship(UserId(u as u32), UserId(u as u32 + 1));
        }
        let n_docs = b.n_docs();
        for i in 0..n_docs - 1 {
            b.add_diffusion(
                crate::ids::DocId(i as u32 + 1),
                crate::ids::DocId(i as u32),
                1,
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn full_fraction_is_identity_in_counts() {
        let g = grid_graph(20, 5);
        let s = subsample(&g, 1.0, 7);
        assert_eq!(s.n_docs(), g.n_docs());
        assert_eq!(s.friendships().len(), g.friendships().len());
        assert_eq!(s.diffusions().len(), g.diffusions().len());
    }

    #[test]
    fn half_fraction_roughly_halves() {
        let g = grid_graph(100, 10);
        let s = subsample(&g, 0.5, 7);
        let ratio = s.n_docs() as f64 / g.n_docs() as f64;
        assert!((0.4..0.6).contains(&ratio), "doc ratio {ratio}");
        // Diffusion links suffer endpoint loss on top of thinning.
        assert!(s.diffusions().len() < g.diffusions().len() / 2);
        // All diffusion endpoints must be valid in the new graph.
        for l in s.diffusions() {
            assert!(l.src.index() < s.n_docs());
            assert!(l.dst.index() < s.n_docs());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = grid_graph(50, 4);
        let a = subsample(&g, 0.3, 99);
        let b = subsample(&g, 0.3, 99);
        assert_eq!(a.n_docs(), b.n_docs());
        assert_eq!(a.diffusions().len(), b.diffusions().len());
    }
}
