//! K-fold link splits for the paper's 10-fold cross-validated link
//! prediction (Sect. 6.1: each fold holds out 10% of positive links).

use crate::graph::SocialGraph;
use cpd_prob::rng::seeded_rng;
use rand::seq::SliceRandom;

/// Partition `0..n` into `k` shuffled folds of near-equal size.
pub fn k_fold_indices(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 1, "need at least one fold");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut seeded_rng(seed));
    let mut folds: Vec<Vec<usize>> = vec![Vec::with_capacity(n / k + 1); k];
    for (i, v) in idx.into_iter().enumerate() {
        folds[i % k].push(v);
    }
    folds
}

/// A train graph plus the held-out positive link indices for one fold.
pub struct LinkHoldout {
    /// Training graph (held-out links removed).
    pub train: SocialGraph,
    /// Indices (into the *original* graph's link list) of held-out links.
    pub held_out: Vec<usize>,
}

/// Build the `fold`-th friendship-link holdout.
pub fn friendship_holdout(g: &SocialGraph, folds: &[Vec<usize>], fold: usize) -> LinkHoldout {
    let held: Vec<usize> = folds[fold].clone();
    let mask = index_mask(g.friendships().len(), &held);
    LinkHoldout {
        train: g.retain_friendships(|i| !mask[i]),
        held_out: held,
    }
}

/// Build the `fold`-th diffusion-link holdout.
pub fn diffusion_holdout(g: &SocialGraph, folds: &[Vec<usize>], fold: usize) -> LinkHoldout {
    let held: Vec<usize> = folds[fold].clone();
    let mask = index_mask(g.diffusions().len(), &held);
    LinkHoldout {
        train: g.retain_diffusions(|i| !mask[i]),
        held_out: held,
    }
}

fn index_mask(n: usize, held: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &i in held {
        mask[i] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;
    use crate::graph::SocialGraphBuilder;
    use crate::ids::{DocId, UserId, WordId};

    fn graph() -> SocialGraph {
        let mut b = SocialGraphBuilder::new(10, 3);
        for u in 0..10u32 {
            b.add_document(Document::new(UserId(u), vec![WordId(u % 3)], 0));
        }
        for u in 0..9u32 {
            b.add_friendship(UserId(u), UserId(u + 1));
        }
        for d in 0..9u32 {
            b.add_diffusion(DocId(d + 1), DocId(d), 0);
        }
        b.build().unwrap()
    }

    #[test]
    fn folds_partition_exactly() {
        let folds = k_fold_indices(23, 5, 1);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        for f in &folds {
            assert!(f.len() == 4 || f.len() == 5);
        }
    }

    #[test]
    fn holdout_removes_exactly_the_fold() {
        let g = graph();
        let folds = k_fold_indices(g.friendships().len(), 3, 2);
        let h = friendship_holdout(&g, &folds, 0);
        assert_eq!(
            h.train.friendships().len(),
            g.friendships().len() - h.held_out.len()
        );
        // Held-out links are absent from the training edge list.
        for &i in &h.held_out {
            let l = g.friendships()[i];
            assert!(!h.train.friendships().contains(&l));
        }
    }

    #[test]
    fn diffusion_holdout_round_trips() {
        let g = graph();
        let folds = k_fold_indices(g.diffusions().len(), 3, 3);
        let total: usize = (0..3)
            .map(|f| diffusion_holdout(&g, &folds, f).held_out.len())
            .sum();
        assert_eq!(total, g.diffusions().len());
    }

    #[test]
    fn single_fold_holds_out_everything() {
        let g = graph();
        let folds = k_fold_indices(g.diffusions().len(), 1, 4);
        let h = diffusion_holdout(&g, &folds, 0);
        assert_eq!(h.train.diffusions().len(), 0);
        assert_eq!(h.held_out.len(), g.diffusions().len());
    }
}
