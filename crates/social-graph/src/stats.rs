//! Summary statistics (Table 3 of the paper).

use std::fmt;

/// Corpus-level counts, printable as a Table-3-style row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GraphStats {
    /// `#(user)`
    pub n_users: usize,
    /// `#(doc.)`
    pub n_docs: usize,
    /// `#(word)` — vocabulary size.
    pub vocab_size: usize,
    /// Total token occurrences.
    pub n_tokens: usize,
    /// `#(friend. link)`
    pub n_friendship_links: usize,
    /// `#(diff. link)`
    pub n_diffusion_links: usize,
    /// Number of discrete time buckets.
    pub n_timestamps: u32,
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>10} users, {:>10} friend links, {:>10} diff links, {:>10} docs, {:>8} words, {:>10} tokens, {:>5} epochs",
            self.n_users,
            self.n_friendship_links,
            self.n_diffusion_links,
            self.n_docs,
            self.vocab_size,
            self.n_tokens,
            self.n_timestamps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_all_counts() {
        let s = GraphStats {
            n_users: 1,
            n_docs: 2,
            vocab_size: 3,
            n_tokens: 4,
            n_friendship_links: 5,
            n_diffusion_links: 6,
            n_timestamps: 7,
        };
        let out = s.to_string();
        for needle in [
            "1 users", "5 friend", "6 diff", "2 docs", "3 words", "4 tokens",
        ] {
            assert!(out.contains(needle), "missing {needle} in {out}");
        }
    }
}
