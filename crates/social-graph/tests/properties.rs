//! Property-based tests for the social-graph substrate.

use proptest::prelude::*;
use social_graph::csr::Csr;
use social_graph::split::k_fold_indices;
use social_graph::{sample::subsample, Document, SocialGraphBuilder, UserId, WordId};

/// Strategy: a random valid graph description.
#[allow(clippy::type_complexity)]
fn graph_strategy() -> impl Strategy<
    Value = (
        usize,                     // n_users
        usize,                     // vocab
        Vec<(u32, Vec<u32>, u32)>, // docs: (author, words, t)
        Vec<(u32, u32)>,           // friendships
        Vec<(u32, u32)>,           // diffusions (doc idx pairs)
    ),
> {
    (2usize..20, 2usize..30).prop_flat_map(|(n_users, vocab)| {
        let docs = prop::collection::vec(
            (
                0..n_users as u32,
                prop::collection::vec(0..vocab as u32, 1..6),
                0u32..8,
            ),
            1..30,
        );
        docs.prop_flat_map(move |docs| {
            let n_docs = docs.len();
            let friends = prop::collection::vec((0..n_users as u32, 0..n_users as u32), 0..40);
            let diffs = prop::collection::vec((0..n_docs as u32, 0..n_docs as u32), 0..20);
            (Just(n_users), Just(vocab), Just(docs), friends, diffs)
        })
    })
}

fn build(
    n_users: usize,
    vocab: usize,
    docs: &[(u32, Vec<u32>, u32)],
    friends: &[(u32, u32)],
    diffs: &[(u32, u32)],
) -> social_graph::SocialGraph {
    let mut b = SocialGraphBuilder::new(n_users, vocab);
    for (author, words, t) in docs {
        b.add_document(Document::new(
            UserId(*author),
            words.iter().map(|&w| WordId(w)).collect(),
            *t,
        ));
    }
    for &(u, v) in friends.iter().filter(|(u, v)| u != v) {
        b.add_friendship(UserId(u), UserId(v));
    }
    for &(i, j) in diffs.iter().filter(|(i, j)| i != j) {
        b.add_diffusion(
            social_graph::DocId(i),
            social_graph::DocId(j),
            docs[i as usize].2,
        );
    }
    b.build().expect("strategy only produces valid graphs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adjacency_is_consistent_with_edge_lists(
        (n_users, vocab, docs, friends, diffs) in graph_strategy()
    ) {
        let g = build(n_users, vocab, &docs, &friends, &diffs);
        // Degree sums equal twice the link count (each link incident to
        // exactly two users).
        let deg_sum: usize = (0..n_users).map(|u| g.friend_degree(UserId(u as u32))).sum();
        prop_assert_eq!(deg_sum, 2 * g.friendships().len());
        // Followers/followees sum to link count.
        let followers: u32 = (0..n_users).map(|u| g.followers(UserId(u as u32))).sum();
        let followees: u32 = (0..n_users).map(|u| g.followees(UserId(u as u32))).sum();
        prop_assert_eq!(followers as usize, g.friendships().len());
        prop_assert_eq!(followees as usize, g.friendships().len());
        // Diffusion incidences sum to twice the diffusion count.
        let inc: usize = (0..g.n_docs())
            .map(|d| g.diffusion_links_of(social_graph::DocId(d as u32)).len())
            .sum();
        prop_assert_eq!(inc, 2 * g.diffusions().len());
        // Docs-per-user partition the documents.
        let doc_sum: usize = (0..n_users).map(|u| g.n_docs_of(UserId(u as u32))).sum();
        prop_assert_eq!(doc_sum, g.n_docs());
    }

    #[test]
    fn stats_count_everything(
        (n_users, vocab, docs, friends, diffs) in graph_strategy()
    ) {
        let g = build(n_users, vocab, &docs, &friends, &diffs);
        let s = g.stats();
        prop_assert_eq!(s.n_users, n_users);
        prop_assert_eq!(s.n_docs, docs.len());
        prop_assert_eq!(
            s.n_tokens,
            docs.iter().map(|(_, w, _)| w.len()).sum::<usize>()
        );
        prop_assert!(s.n_timestamps >= 1);
    }

    #[test]
    fn subsample_is_a_valid_subgraph(
        (n_users, vocab, docs, friends, diffs) in graph_strategy(),
        frac in 0.1f64..1.0,
        seed in 0u64..100,
    ) {
        let g = build(n_users, vocab, &docs, &friends, &diffs);
        let s = subsample(&g, frac, seed);
        prop_assert!(s.n_docs() <= g.n_docs());
        prop_assert!(s.friendships().len() <= g.friendships().len());
        prop_assert!(s.diffusions().len() <= g.diffusions().len());
        for l in s.diffusions() {
            prop_assert!(l.src.index() < s.n_docs());
            prop_assert!(l.dst.index() < s.n_docs());
            prop_assert_ne!(l.src, l.dst);
        }
    }

    #[test]
    fn k_folds_partition(n in 1usize..200, k in 2usize..10, seed in 0u64..100) {
        let folds = k_fold_indices(n, k, seed);
        prop_assert_eq!(folds.len(), k);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        // Fold sizes differ by at most one.
        let sizes: Vec<usize> = folds.iter().map(|f| f.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn csr_preserves_all_pairs(
        pairs in prop::collection::vec((0u32..15, 0u32..1000), 0..60)
    ) {
        let csr = Csr::from_pairs(15, pairs.clone());
        prop_assert_eq!(csr.total(), pairs.len());
        for node in 0..15 {
            let want: Vec<u32> = pairs
                .iter()
                .filter(|(n, _)| *n == node as u32)
                .map(|(_, p)| *p)
                .collect();
            prop_assert_eq!(csr.row(node), &want[..]);
        }
    }
}
