//! Log-bucketed latency histogram with lock-free recording.
//!
//! The bucketing scheme is the HdrHistogram idea reduced to its core:
//! values (durations in integer nanoseconds) are grouped into octaves
//! by their highest set bit, and every octave is split into
//! `2^SUB_BITS = 8` equal-width sub-buckets. Values below 8 get an
//! exact bucket each. A bucket covering `[lo, lo + w)` therefore has
//! `w / lo <= 1/8`, so reading a quantile back through the bucket
//! midpoint is within `1/16` relative error of the exact sample —
//! "one bucket's relative error", uniformly across nine orders of
//! magnitude, in 496 fixed slots (no allocation on the record path).
//!
//! Recording is a single relaxed `fetch_add` on the bucket plus two
//! for the running count/sum; readers snapshot the buckets with
//! relaxed loads. Under concurrent writes a snapshot is a consistent
//! *approximation* (counts may trail the sum by in-flight records),
//! which is exactly the contract a metrics scrape needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` equal slots.
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS; // 8

/// Total bucket count: 8 exact low buckets + 61 octaves × 8 slots
/// (octaves for exponents 3..=63 inclusive).
pub const N_BUCKETS: usize = SUBS + 61 * SUBS;

/// Map a value to its bucket index.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS
        let shift = exp - SUB_BITS;
        let sub = (v >> shift) as usize - SUBS; // 0..8
        SUBS + (shift as usize) * SUBS + sub
    }
}

/// Inclusive lower bound of bucket `i` (inverse of [`bucket_index`]).
fn bucket_lower(i: usize) -> u64 {
    if i < SUBS {
        i as u64
    } else {
        let shift = (i - SUBS) / SUBS;
        let sub = (i - SUBS) % SUBS;
        ((SUBS + sub) as u64) << shift
    }
}

/// Exclusive upper bound of bucket `i` (saturating: the top bucket
/// runs to `u64::MAX`).
fn bucket_upper(i: usize) -> u64 {
    if i < SUBS {
        i as u64 + 1
    } else {
        let shift = (i - SUBS) / SUBS;
        bucket_lower(i).saturating_add(1u64 << shift)
    }
}

struct Cells {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A lock-free log-bucketed histogram of durations in nanoseconds.
///
/// Cloning is cheap (`Arc` handle); all clones feed the same cells.
#[derive(Clone)]
pub struct Histogram {
    cells: Arc<Cells>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum_nanos", &self.sum_nanos())
            .finish()
    }
}

impl Histogram {
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`, so build the array by mapping.
        let buckets = [(); N_BUCKETS].map(|()| AtomicU64::new(0));
        Histogram {
            cells: Arc::new(Cells {
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Record one duration, in nanoseconds.
    #[inline]
    pub fn record(&self, nanos: u64) {
        let c = &self.cells;
        c.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record a [`Duration`] (saturating at `u64::MAX` nanoseconds).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record a duration given in fractional seconds (negative or
    /// non-finite values are dropped).
    #[inline]
    pub fn record_secs(&self, secs: f64) {
        if secs.is_finite() && secs >= 0.0 {
            self.record((secs * 1e9) as u64);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) of the recorded samples, in
    /// nanoseconds, read back as the midpoint of the bucket holding
    /// the rank-`ceil(q·n)` sample. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .cells
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i < SUBS {
                    return i as f64; // exact low buckets
                }
                return (bucket_lower(i) + bucket_upper(i)) as f64 / 2.0;
            }
        }
        unreachable!("rank <= n yet cumulative walk overran the buckets")
    }

    /// Start a span whose wall-clock duration lands in this histogram
    /// when the guard drops (or [`Span::finish`] is called).
    pub fn span(&self) -> Span {
        Span {
            hist: Some(self.clone()),
            start: Instant::now(),
        }
    }

    /// Record `f`'s wall-clock duration and return its result.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record_duration(start.elapsed());
        out
    }
}

/// A live span timer: created by [`Histogram::span`], records its
/// elapsed wall-clock time into the histogram exactly once — on drop
/// or on an explicit [`finish`](Span::finish).
#[derive(Debug)]
pub struct Span {
    hist: Option<Histogram>,
    start: Instant,
}

impl Span {
    /// Stop the span now and record it (equivalent to dropping).
    pub fn finish(mut self) {
        self.record_once();
    }

    /// Abandon the span without recording anything.
    pub fn cancel(mut self) {
        self.hist = None;
    }

    fn record_once(&mut self) {
        if let Some(h) = self.hist.take() {
            h.record_duration(self.start.elapsed());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record_once();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_bounds_are_inverse() {
        for i in 0..N_BUCKETS {
            let lo = bucket_lower(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            let hi = bucket_upper(i);
            if hi > lo + 1 {
                assert_eq!(bucket_index(hi - 1), i, "last value of bucket {i}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum_nanos(), 28);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 7.0);
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let h = Histogram::new();
        let mut vals: Vec<u64> = (0..1000).map(|i| 1000 + i * 997).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for &q in &[0.5, 0.99, 0.999] {
            let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let exact = vals[rank - 1] as f64;
            let got = h.quantile(q);
            assert!(
                (got - exact).abs() <= exact / 8.0,
                "q={q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn span_records_once() {
        let h = Histogram::new();
        h.span().finish();
        {
            let _s = h.span();
        }
        let c = h.span();
        c.cancel();
        assert_eq!(h.count(), 2);
    }
}
