//! # cpd-telemetry — metrics for the CPD training and serving stack
//!
//! A minimal, pure-`std`, dependency-free observability layer shared
//! by `cpd-core` (the trainer), `cpd-serve` (the query runtime), and
//! `cpd-server` (the TCP front). It exists so that behaviour the
//! paper *measures* — sweep times, query latency tails, cache
//! efficiency — is observable live, not only in post-hoc one-shot
//! structs.
//!
//! ## Pieces
//!
//! - [`Registry`] — named, labelled metric families. Registration is
//!   a cold-path `Mutex`; the returned handles are lock-free.
//! - [`Counter`] / [`Gauge`] — one relaxed atomic op per update.
//! - [`Histogram`] — log-bucketed latency histogram (8 sub-buckets
//!   per octave, 496 fixed slots): `record` is three relaxed
//!   `fetch_add`s; [`Histogram::quantile`] reads p50/p99/p999 back
//!   within one bucket's relative error (≤ 1/16). Durations are
//!   recorded in nanoseconds and rendered in seconds.
//! - [`Span`] — a guard timer from [`Histogram::span`]: records its
//!   wall-clock lifetime exactly once, on drop or `finish()`.
//! - Event ring — [`Registry::event`] appends to a bounded
//!   `VecDeque` (oldest evicted) for rare, discrete happenings:
//!   snapshot reloads, fit milestones.
//! - [`Registry::render_prometheus`] — the text exposition format
//!   (version 0.0.4) with `# HELP`/`# TYPE` lines, escaped label
//!   values, stable (sorted) family and series order, and histograms
//!   rendered as `summary` quantile series plus `_sum`/`_count`.
//! - Tracing — [`TraceContext`] (wire-propagated), [`ActiveTrace`]
//!   span trees for sampled requests, a [`Tracer`] policy (head
//!   sampling by rate, tail sampling of sheds / deadline drops /
//!   errors / slow requests), and a bounded [`TraceStore`] ring with
//!   a derived slow-query log. Unsampled requests allocate nothing.
//!
//! ## Zero overhead when unused
//!
//! Nothing here installs itself globally. Producers hold an
//! `Option<Arc<Registry>>` (or `Option<Histogram>` handles resolved
//! at setup); when the option is `None` the instrumented code runs
//! the same instructions as before this crate existed. When a
//! registry *is* attached, the hot-path cost is a handful of relaxed
//! atomics per *sweep* or per *query* — never per token.
//!
//! ## Naming conventions
//!
//! Metrics follow Prometheus conventions: `cpd_` prefix, `_total`
//! suffix on counters, `_seconds` on time histograms, base units
//! only. `docs/monitoring.md` at the workspace root lists every
//! metric the CPD crates export.
//!
//! ```
//! use cpd_telemetry::Registry;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! let queries = registry.counter("cpd_demo_queries_total", "demo", &[]);
//! let latency = registry.histogram("cpd_demo_seconds", "demo", &[]);
//! queries.inc();
//! latency.time(|| { /* work */ });
//! let text = registry.render_prometheus();
//! assert!(text.contains("# TYPE cpd_demo_queries_total counter"));
//! assert!(text.contains("cpd_demo_seconds_count 1"));
//! ```

mod histogram;
mod registry;
mod store;
mod trace;

pub use histogram::{Histogram, Span, N_BUCKETS};
pub use registry::{Counter, Event, Gauge, Registry};
pub use store::TraceStore;
pub use trace::{
    ActiveTrace, KeepReason, SpanRecord, Trace, TraceConfig, TraceContext, TraceSpanGuard, Tracer,
};
