//! The metric registry: named, labelled families of counters, gauges,
//! and histograms, plus a bounded event ring.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a `Mutex` and is
//! meant for setup paths — callers grab handles once and keep them.
//! The handles themselves ([`Counter`], [`Gauge`],
//! [`Histogram`](crate::Histogram)) are `Arc`-backed atomics: hot
//! paths touch only relaxed atomic ops, never the registry lock.
//! Rendering ([`Registry::render_prometheus`]) walks the families
//! under the lock but only *reads* the atomic cells, so it never
//! blocks a recorder.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::histogram::Histogram;

/// A monotonically increasing counter. Clones share the same cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Overwrite the value. For mirroring an externally tracked
    /// monotone total (e.g. a cache's own hit counter) into the
    /// registry at scrape time — not for hot-path use.
    pub fn store(&self, n: u64) {
        self.cell.store(n, Ordering::Relaxed);
    }
}

/// A gauge holding an `f64` (stored as bits in an `AtomicU64`).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.cell.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }

    #[inline]
    pub fn add(&self, delta: f64) {
        // CAS loop: gauges are low-frequency (queue depth, not tokens).
        let mut cur = self.cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .cell
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// One recorded event in the bounded ring.
#[derive(Clone, Debug)]
pub struct Event {
    /// Seconds since the registry was created.
    pub at_seconds: f64,
    /// Short machine-friendly kind, e.g. `"reload"`.
    pub kind: String,
    /// Free-form human detail.
    pub detail: String,
}

enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Cell {
    fn kind(&self) -> &'static str {
        match self {
            Cell::Counter(_) => "counter",
            Cell::Gauge(_) => "gauge",
            Cell::Histogram(_) => "histogram",
        }
    }
}

struct Family {
    help: String,
    /// Series keyed by their sorted `(label, value)` pairs.
    series: BTreeMap<Vec<(String, String)>, Cell>,
}

struct Inner {
    families: BTreeMap<String, Family>,
    events: std::collections::VecDeque<Event>,
}

/// The top-level metric registry. `Arc<Registry>` is the unit of
/// sharing: the trainer, the serve runtime, and the TCP server can all
/// point at one registry so a single scrape sees every layer.
pub struct Registry {
    inner: Mutex<Inner>,
    started: Instant,
    event_capacity: usize,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("Registry")
            .field("families", &inner.families.len())
            .field("events", &inner.events.len())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Default bound on the event ring.
const DEFAULT_EVENT_CAPACITY: usize = 256;

impl Registry {
    pub fn new() -> Self {
        Registry {
            inner: Mutex::new(Inner {
                families: BTreeMap::new(),
                events: std::collections::VecDeque::new(),
            }),
            started: Instant::now(),
            event_capacity: DEFAULT_EVENT_CAPACITY,
        }
    }

    /// Seconds since this registry was created (process-local uptime).
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Get-or-register a counter series. Panics if `name` was already
    /// registered with a different metric type (programmer error).
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.cell(name, help, labels, || Cell::Counter(Counter::new())) {
            Cell::Counter(c) => c.clone(),
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// Get-or-register a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.cell(name, help, labels, || Cell::Gauge(Gauge::new())) {
            Cell::Gauge(g) => g.clone(),
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get-or-register a histogram series (durations in nanoseconds,
    /// rendered in seconds).
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.cell(name, help, labels, || Cell::Histogram(Histogram::new())) {
            Cell::Histogram(h) => h.clone(),
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    fn cell(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Cell,
    ) -> Cell {
        let key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut inner = self.inner.lock().unwrap();
        let family = inner
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                series: BTreeMap::new(),
            });
        let cell = family.series.entry(key).or_insert_with(make);
        match cell {
            Cell::Counter(c) => Cell::Counter(c.clone()),
            Cell::Gauge(g) => Cell::Gauge(g.clone()),
            Cell::Histogram(h) => Cell::Histogram(h.clone()),
        }
    }

    /// Append an event to the bounded ring (oldest entries evicted).
    pub fn event(&self, kind: &str, detail: impl Into<String>) {
        let at_seconds = self.uptime_seconds();
        let mut inner = self.inner.lock().unwrap();
        if inner.events.len() == self.event_capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(Event {
            at_seconds,
            kind: kind.to_string(),
            detail: detail.into(),
        });
    }

    /// The most recent events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().unwrap().events.iter().cloned().collect()
    }

    /// Render every registered family in the Prometheus text
    /// exposition format, version 0.0.4.
    ///
    /// Families come out sorted by name and series by label set, so
    /// the output is byte-stable for a fixed set of values. Counters
    /// render as `counter` (callers name them `*_total` by
    /// convention), gauges as `gauge`, and histograms as Prometheus
    /// `summary` series — `{quantile="0.5|0.99|0.999"}` plus `_sum`
    /// and `_count`, with durations converted from recorded
    /// nanoseconds to seconds.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, family) in &inner.families {
            let kind = family
                .series
                .values()
                .next()
                .map(|c| match c {
                    Cell::Counter(_) => "counter",
                    Cell::Gauge(_) => "gauge",
                    Cell::Histogram(_) => "summary",
                })
                .unwrap_or("untyped");
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&family.help)));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (labels, cell) in &family.series {
                match cell {
                    Cell::Counter(c) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, &[]),
                            c.get()
                        ));
                    }
                    Cell::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, &[]),
                            fmt_f64(g.get())
                        ));
                    }
                    Cell::Histogram(h) => {
                        for (q, qs) in [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
                            out.push_str(&format!(
                                "{name}{} {}\n",
                                render_labels(labels, &[("quantile", qs)]),
                                fmt_f64(h.quantile(q) / 1e9)
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            render_labels(labels, &[]),
                            fmt_f64(h.sum_nanos() as f64 / 1e9)
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            render_labels(labels, &[]),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }
}

/// `{k="v",...}` with escaped values, or `""` when there are no labels.
fn render_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.extend(
        extra
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))),
    );
    format!("{{{}}}", parts.join(","))
}

/// Escape a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escape HELP text: `\` → `\\`, newline → `\n`.
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Prometheus-friendly float formatting (plain decimal; `Display` for
/// `f64` in Rust never produces exponent notation).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let r = Registry::new();
        let c = r.counter("x_total", "help", &[("k", "v")]);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Re-registration returns the same cell.
        assert_eq!(r.counter("x_total", "help", &[("k", "v")]).get(), 3);

        let g = r.gauge("g", "help", &[]);
        g.set(1.5);
        g.add(1.0);
        assert!((g.get() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("m", "help", &[]);
        r.gauge("m", "help", &[]);
    }

    #[test]
    fn event_ring_is_bounded() {
        let r = Registry::new();
        for i in 0..(DEFAULT_EVENT_CAPACITY + 10) {
            r.event("tick", format!("{i}"));
        }
        let events = r.events();
        assert_eq!(events.len(), DEFAULT_EVENT_CAPACITY);
        assert_eq!(events[0].detail, "10");
    }
}
