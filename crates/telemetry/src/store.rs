//! A bounded ring of completed traces plus the slow-query log derived
//! from it.
//!
//! The store is sized at construction and never reallocates: `push`
//! claims a slot with one relaxed `fetch_add` on the head index, then
//! swaps the `Arc<Trace>` in under that slot's own mutex. The index is
//! lock-free and slots are touched by at most one pusher at a time in
//! steady state, so completed-trace publication never contends with
//! the query hot path (which, for unsampled requests, never gets
//! here at all).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::trace::{KeepReason, Trace};

struct Slot {
    /// `(sequence, trace)` — the sequence orders snapshots newest
    /// first even though slots are reused out of order under races.
    cell: Mutex<Option<(u64, Arc<Trace>)>>,
}

/// Bounded, overwrite-oldest storage for completed [`Trace`]s.
pub struct TraceStore {
    slots: Vec<Slot>,
    head: AtomicU64,
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("capacity", &self.slots.len())
            .field("pushed", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceStore {
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceStore {
            slots: (0..capacity)
                .map(|_| Slot {
                    cell: Mutex::new(None),
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever pushed (stored + since overwritten).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Store a completed trace, overwriting the oldest when full.
    pub fn push(&self, trace: Arc<Trace>) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.cell.lock().unwrap() = Some((seq, trace));
    }

    /// All currently stored traces, newest first.
    pub fn snapshot(&self) -> Vec<Arc<Trace>> {
        let mut entries: Vec<(u64, Arc<Trace>)> = self
            .slots
            .iter()
            .filter_map(|s| s.cell.lock().unwrap().clone())
            .collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.0));
        entries.into_iter().map(|(_, t)| t).collect()
    }

    /// The slow-query log: the stored traces ranked by root duration
    /// (slowest first), truncated to `n`. Tail-kept traces (shed,
    /// deadline, error) rank by their recorded extent like any other.
    pub fn slow_log(&self, n: usize) -> Vec<Arc<Trace>> {
        let mut all = self.snapshot();
        all.sort_by_key(|t| std::cmp::Reverse(t.duration_nanos));
        all.truncate(n);
        all
    }

    /// One line per slow-log entry — the human-readable forensics
    /// summary printed by the examples and admin tooling.
    pub fn render_slow_log(&self, n: usize) -> String {
        let mut out = String::new();
        for t in self.slow_log(n) {
            out.push_str(&format!(
                "{:>10.3}ms  keep={:<18} trace={:#018x}  {}\n",
                t.duration_nanos as f64 / 1e6,
                t.keep.label(),
                t.trace_id,
                t.root_name(),
            ));
        }
        out
    }

    /// JSON array of every stored trace, newest first.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, t) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json());
        }
        out.push(']');
        out
    }

    /// Stored traces kept for a specific reason, newest first.
    pub fn kept(&self, keep: KeepReason) -> Vec<Arc<Trace>> {
        self.snapshot()
            .into_iter()
            .filter(|t| t.keep == keep)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, duration_nanos: u64, keep: KeepReason) -> Arc<Trace> {
        Arc::new(Trace {
            trace_id: id,
            keep,
            duration_nanos,
            dropped_spans: 0,
            spans: vec![],
        })
    }

    #[test]
    fn ring_overwrites_oldest() {
        let store = TraceStore::new(3);
        for i in 0..5u64 {
            store.push(trace(i, i, KeepReason::Sampled));
        }
        let snap = store.snapshot();
        assert_eq!(snap.len(), 3);
        let ids: Vec<u64> = snap.iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![4, 3, 2], "newest first, oldest evicted");
        assert_eq!(store.pushed(), 5);
    }

    #[test]
    fn slow_log_ranks_by_duration() {
        let store = TraceStore::new(8);
        store.push(trace(1, 10, KeepReason::Sampled));
        store.push(trace(2, 30, KeepReason::Slow));
        store.push(trace(3, 20, KeepReason::Shed));
        let slow = store.slow_log(2);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].trace_id, 2);
        assert_eq!(slow[1].trace_id, 3);
        let rendered = store.render_slow_log(8);
        assert!(rendered.contains("keep=slow"), "{rendered}");
    }

    #[test]
    fn kept_filters_by_reason() {
        let store = TraceStore::new(8);
        store.push(trace(1, 1, KeepReason::Sampled));
        store.push(trace(2, 1, KeepReason::Shed));
        assert_eq!(store.kept(KeepReason::Shed).len(), 1);
        assert_eq!(store.kept(KeepReason::Shed)[0].trace_id, 2);
    }

    #[test]
    fn json_dump_is_an_array() {
        let store = TraceStore::new(4);
        store.push(trace(1, 5, KeepReason::Error));
        let json = store.to_json();
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("\"keep\":\"error\""), "{json}");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let store = TraceStore::new(0);
        store.push(trace(1, 1, KeepReason::Sampled));
        assert_eq!(store.snapshot().len(), 1);
    }
}
