//! Request tracing: wire-propagated trace context and span trees.
//!
//! A [`TraceContext`] is the tiny value that crosses the wire: a
//! 64-bit trace id, the caller's span id (so remote spans parent
//! correctly), and a sampling flag. An [`ActiveTrace`] is the
//! in-process recording surface — a cheap-to-clone `Arc` holding the
//! span list — that exists *only* for sampled requests: the untraced
//! path carries `Option<ActiveTrace>::None` and allocates nothing.
//!
//! Sampling is two-sided, decided by a [`Tracer`]:
//!
//! - **Head sampling** — at the edge (client mint or server adopt),
//!   one request in [`TraceConfig::sample_one_in`] gets a full span
//!   tree. Everything about it is recorded as it happens.
//! - **Tail sampling** — requests that were *not* head-sampled but
//!   end badly (shed, deadline drop, error, or latency over
//!   [`TraceConfig::slow_threshold`]) get a minimal one-span trace
//!   synthesised after the fact, so forensics never miss the
//!   interesting tail. The rare-path allocation is the entire cost.
//!
//! Completed traces land in a bounded [`TraceStore`](crate::TraceStore)
//! ring; [`Trace::render_text`] renders a flamegraph-style tree and
//! [`Trace::to_json`] dumps machine-readable JSON (hand-rolled — this
//! crate stays dependency-free).
//!
//! Span timestamps are monotonic (`Instant`-anchored) nanosecond
//! offsets from the trace start, so a trace whose first span (the
//! socket read) began *before* the context was decoded can still
//! anchor at the read: create the trace with [`ActiveTrace::begin_at`].
//!
//! Span ids are sequential within one `ActiveTrace`. When a context is
//! adopted from the wire, ids continue from `parent_span + 1`, so the
//! server-side dump never reuses the caller's span id and renderers
//! can treat "parent not present" as a segment root unambiguously.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use crate::store::TraceStore;

/// The wire-carried trace context: which trace a request belongs to,
/// which caller span it should parent under, and whether the request
/// is head-sampled (span recording on) or merely labelled (id known,
/// recording off — still enough for tail sampling and fault logs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    pub trace_id: u64,
    pub parent_span: u64,
    pub sampled: bool,
}

/// One completed span inside a trace. Times are nanosecond offsets
/// from the trace start (monotonic, never wall clock).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    pub id: u64,
    /// Parent span id; a span whose parent is not present in the same
    /// dump is a segment root (e.g. the server root parents under a
    /// client span that lives in the client's dump).
    pub parent: u64,
    pub name: Cow<'static, str>,
    pub start_nanos: u64,
    pub end_nanos: u64,
}

impl SpanRecord {
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

/// Why a completed trace was kept in the store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeepReason {
    /// Head-sampled at the edge: full span tree.
    Sampled,
    /// Root latency crossed [`TraceConfig::slow_threshold`].
    Slow,
    /// Refused at admission (`Overloaded`).
    Shed,
    /// Admitted but dropped at dequeue past its deadline.
    DeadlineExceeded,
    /// The request errored (panic, validation failure, transport).
    Error,
}

impl KeepReason {
    pub fn label(&self) -> &'static str {
        match self {
            KeepReason::Sampled => "sampled",
            KeepReason::Slow => "slow",
            KeepReason::Shed => "shed",
            KeepReason::DeadlineExceeded => "deadline_exceeded",
            KeepReason::Error => "error",
        }
    }

    /// Stable byte for wire encoding.
    pub fn as_u8(&self) -> u8 {
        match self {
            KeepReason::Sampled => 0,
            KeepReason::Slow => 1,
            KeepReason::Shed => 2,
            KeepReason::DeadlineExceeded => 3,
            KeepReason::Error => 4,
        }
    }

    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0 => KeepReason::Sampled,
            1 => KeepReason::Slow,
            2 => KeepReason::Shed,
            3 => KeepReason::DeadlineExceeded,
            4 => KeepReason::Error,
            _ => return None,
        })
    }
}

/// A completed, immutable trace: the unit stored, dumped, and shipped
/// over the wire by the `Traces` admin frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    pub trace_id: u64,
    pub keep: KeepReason,
    /// End offset of the latest span — the trace's total extent.
    pub duration_nanos: u64,
    /// Spans discarded past [`TraceConfig::max_spans`].
    pub dropped_spans: u64,
    /// All recorded spans, sorted by start offset.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// Name of the first root span (no parent present), if any —
    /// the "what was this request" headline for slow-query logs.
    pub fn root_name(&self) -> &str {
        let ids: std::collections::HashSet<u64> = self.spans.iter().map(|s| s.id).collect();
        self.spans
            .iter()
            .find(|s| !ids.contains(&s.parent))
            .map(|s| s.name.as_ref())
            .unwrap_or("")
    }

    /// Flamegraph-style text rendering: one line per span, indented by
    /// tree depth, with start/end offsets and a proportional bar.
    ///
    /// ```text
    /// trace 0x00000000c0ffee42  keep=sampled  spans=3  0.480ms
    ///   request                        0.000..0.480ms |==============|
    ///     queue_wait                   0.010..0.060ms | ==           |
    ///     execute.fold_in              0.070..0.470ms |   ========== |
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "trace {:#018x}  keep={}  spans={}  {:.3}ms",
            self.trace_id,
            self.keep.label(),
            self.spans.len(),
            self.duration_nanos as f64 / 1e6,
        );
        if self.dropped_spans > 0 {
            out.push_str(&format!("  (+{} spans dropped)", self.dropped_spans));
        }
        out.push('\n');

        let ids: std::collections::HashSet<u64> = self.spans.iter().map(|s| s.id).collect();
        // Children grouped by parent, preserving start order (spans
        // are already start-sorted).
        let mut children: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        let mut roots = Vec::new();
        for (i, s) in self.spans.iter().enumerate() {
            if ids.contains(&s.parent) && s.parent != s.id {
                children.entry(s.parent).or_default().push(i);
            } else {
                roots.push(i);
            }
        }
        const BAR: usize = 24;
        let total = self.duration_nanos.max(1) as f64;
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 1)).collect();
        while let Some((i, depth)) = stack.pop() {
            let s = &self.spans[i];
            let from = ((s.start_nanos as f64 / total) * BAR as f64).floor() as usize;
            let to = ((s.end_nanos as f64 / total) * BAR as f64).ceil() as usize;
            let (from, to) = (from.min(BAR), to.clamp(from.min(BAR) + 1, BAR).max(1));
            let mut bar = String::with_capacity(BAR + 2);
            bar.push('|');
            for c in 0..BAR {
                bar.push(if c >= from && c < to { '=' } else { ' ' });
            }
            bar.push('|');
            let label = format!("{}{}", "  ".repeat(depth), s.name);
            out.push_str(&format!(
                "{label:<32} {:>9.3}..{:<9.3}ms {bar}\n",
                s.start_nanos as f64 / 1e6,
                s.end_nanos as f64 / 1e6,
            ));
            if let Some(kids) = children.get(&s.id) {
                for &k in kids.iter().rev() {
                    stack.push((k, depth + 1));
                }
            }
        }
        out
    }

    /// Machine-readable JSON dump (hand-rolled; span names are escaped).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"trace_id\":\"{:#018x}\",\"keep\":\"{}\",\"duration_nanos\":{},\"dropped_spans\":{},\"spans\":[",
            self.trace_id,
            self.keep.label(),
            self.duration_nanos,
            self.dropped_spans,
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_nanos\":{},\"end_nanos\":{}}}",
                s.id,
                s.parent,
                escape_json(&s.name),
                s.start_nanos,
                s.end_nanos,
            ));
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct TraceInner {
    trace_id: u64,
    started: Instant,
    next_span: AtomicU64,
    max_spans: usize,
    dropped: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A live, sampled trace being recorded. Cloning is an `Arc` bump;
/// clones on other threads (the worker pool) append to the same span
/// list. Exists only for sampled requests — unsampled requests never
/// construct one, which is the "zero allocation on the untraced path"
/// guarantee.
#[derive(Clone)]
pub struct ActiveTrace {
    inner: Arc<TraceInner>,
}

impl std::fmt::Debug for ActiveTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveTrace")
            .field("trace_id", &self.inner.trace_id)
            .finish()
    }
}

impl ActiveTrace {
    /// Begin a trace anchored at `now()`.
    pub fn begin(trace_id: u64, max_spans: usize) -> Self {
        Self::begin_at(trace_id, Instant::now(), max_spans)
    }

    /// Begin a trace anchored at an earlier instant — the socket-read
    /// span predates context decode, so the server anchors the trace
    /// at the moment the first request byte arrived.
    pub fn begin_at(trace_id: u64, started: Instant, max_spans: usize) -> Self {
        ActiveTrace {
            inner: Arc::new(TraceInner {
                trace_id,
                started,
                next_span: AtomicU64::new(0),
                max_spans,
                dropped: AtomicU64::new(0),
                spans: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Adopt a wire context on the receiving side: same trace id,
    /// span ids continuing above the caller's `parent_span` so the
    /// two dumps never collide.
    pub fn adopt(ctx: &TraceContext, started: Instant, max_spans: usize) -> Self {
        let t = Self::begin_at(ctx.trace_id, started, max_spans);
        t.inner.next_span.store(ctx.parent_span, Ordering::Relaxed);
        t
    }

    pub fn trace_id(&self) -> u64 {
        self.inner.trace_id
    }

    /// Nanosecond offset of `at` from the trace anchor (clamped at 0).
    pub fn offset_nanos(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.inner.started).as_nanos() as u64
    }

    /// The wire context for an outbound hop parented under `span`.
    pub fn context(&self, parent_span: u64) -> TraceContext {
        TraceContext {
            trace_id: self.inner.trace_id,
            parent_span,
            sampled: true,
        }
    }

    fn alloc_span_id(&self) -> u64 {
        self.inner.next_span.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Start a span now; finish it by dropping the returned guard (or
    /// explicitly via [`TraceSpanGuard::finish`]). The guard's id is
    /// available immediately so children can parent under it while it
    /// is still open.
    pub fn start_span(&self, name: impl Into<Cow<'static, str>>, parent: u64) -> TraceSpanGuard {
        TraceSpanGuard {
            trace: self.clone(),
            id: self.alloc_span_id(),
            parent,
            name: Some(name.into()),
            start: Instant::now(),
        }
    }

    /// Record a span with explicit bounds (for phases timed before the
    /// trace existed, or measured on another thread). Returns its id.
    pub fn record_between(
        &self,
        name: impl Into<Cow<'static, str>>,
        parent: u64,
        start: Instant,
        end: Instant,
    ) -> u64 {
        let id = self.alloc_span_id();
        self.push(SpanRecord {
            id,
            parent,
            name: name.into(),
            start_nanos: self.offset_nanos(start),
            end_nanos: self.offset_nanos(end),
        });
        id
    }

    fn push(&self, record: SpanRecord) {
        let mut spans = self.inner.spans.lock().unwrap();
        if spans.len() >= self.inner.max_spans {
            drop(spans);
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(record);
    }

    /// Snapshot into a completed [`Trace`]. Clones elsewhere may still
    /// append afterwards; the snapshot holds what had finished.
    pub fn complete(&self, keep: KeepReason) -> Trace {
        let mut spans = self.inner.spans.lock().unwrap().clone();
        spans.sort_by_key(|s| (s.start_nanos, s.id));
        let duration_nanos = spans.iter().map(|s| s.end_nanos).max().unwrap_or(0);
        Trace {
            trace_id: self.inner.trace_id,
            keep,
            duration_nanos,
            dropped_spans: self.inner.dropped.load(Ordering::Relaxed),
            spans,
        }
    }
}

/// Guard for an open span: records exactly once, on drop or
/// [`finish`](TraceSpanGuard::finish).
pub struct TraceSpanGuard {
    trace: ActiveTrace,
    id: u64,
    parent: u64,
    name: Option<Cow<'static, str>>,
    start: Instant,
}

impl TraceSpanGuard {
    /// The span's id — parent value for child spans.
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if let Some(name) = self.name.take() {
            let start_nanos = self.trace.offset_nanos(self.start);
            let end_nanos = self.trace.offset_nanos(Instant::now());
            self.trace.push(SpanRecord {
                id: self.id,
                parent: self.parent,
                name,
                start_nanos,
                end_nanos,
            });
        }
    }
}

impl Drop for TraceSpanGuard {
    fn drop(&mut self) {
        self.record();
    }
}

/// Sampling and retention knobs for a [`Tracer`].
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Head-sample one request in this many at the edge. `0` disables
    /// head sampling entirely (tail triggers still fire).
    pub sample_one_in: u64,
    /// Unsampled requests at or over this root latency are
    /// tail-sampled into the store with [`KeepReason::Slow`]; sampled
    /// traces over it are stored as `Slow` rather than `Sampled`.
    pub slow_threshold: Duration,
    /// Completed-trace ring capacity.
    pub store_capacity: usize,
    /// Per-trace span cap; extra spans are counted, not stored.
    pub max_spans: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_one_in: 0,
            slow_threshold: Duration::from_millis(100),
            store_capacity: 128,
            max_spans: 256,
        }
    }
}

/// The per-process tracing policy: allocates trace ids, makes the
/// head-sampling decision, applies tail-sampling triggers, and owns
/// the completed-trace [`TraceStore`].
pub struct Tracer {
    config: TraceConfig,
    ticket: AtomicU64,
    id_state: AtomicU64,
    store: TraceStore,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("config", &self.config)
            .finish()
    }
}

/// SplitMix64 — the id mixer (distinct ids from a sequential state).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Tracer {
    pub fn new(config: TraceConfig) -> Self {
        // Seed the id stream from wall clock + this tracer's address
        // entropy so two processes minting concurrently do not collide.
        let seed = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        let tracer = Tracer {
            config,
            ticket: AtomicU64::new(0),
            id_state: AtomicU64::new(seed),
            store: TraceStore::new(config.store_capacity),
        };
        let addr = &tracer as *const _ as u64;
        tracer
            .id_state
            .fetch_xor(splitmix64(addr), Ordering::Relaxed);
        tracer
    }

    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// A fresh, non-zero trace id.
    pub fn next_trace_id(&self) -> u64 {
        loop {
            let id = splitmix64(self.id_state.fetch_add(1, Ordering::Relaxed));
            if id != 0 {
                return id;
            }
        }
    }

    /// The head-sampling decision: true for one call in
    /// `sample_one_in` (false always when disabled).
    pub fn head_sample(&self) -> bool {
        let n = self.config.sample_one_in;
        n > 0
            && self
                .ticket
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(n)
    }

    /// Edge minting: head-sample, and when sampled begin a trace
    /// anchored at `started`. `None` is the untraced path — no
    /// allocation happened.
    pub fn mint(&self, started: Instant) -> Option<ActiveTrace> {
        self.head_sample()
            .then(|| ActiveTrace::begin_at(self.next_trace_id(), started, self.config.max_spans))
    }

    /// Adopt a wire context: recording only if the caller sampled.
    pub fn adopt(&self, ctx: &TraceContext, started: Instant) -> Option<ActiveTrace> {
        ctx.sampled
            .then(|| ActiveTrace::adopt(ctx, started, self.config.max_spans))
    }

    /// Complete a sampled trace and store it. `keep` upgrades from
    /// `Sampled` to `Slow` when the root latency crosses the
    /// threshold; an explicit non-`Sampled` reason is kept as given.
    pub fn complete(&self, trace: &ActiveTrace, keep: KeepReason) -> Arc<Trace> {
        let mut done = trace.complete(keep);
        if done.keep == KeepReason::Sampled
            && done.duration_nanos >= self.config.slow_threshold.as_nanos() as u64
        {
            done.keep = KeepReason::Slow;
        }
        let done = Arc::new(done);
        self.store.push(Arc::clone(&done));
        done
    }

    /// Tail-sample an *unsampled* request that ended badly: synthesise
    /// a minimal one-span trace (the only allocation the untraced path
    /// ever pays, and only on this rare path). `trace_id` is the
    /// request's wire id when it carried one, else a fresh id.
    pub fn tail_sample(
        &self,
        trace_id: Option<u64>,
        name: impl Into<Cow<'static, str>>,
        keep: KeepReason,
        start: Instant,
        end: Instant,
    ) -> Arc<Trace> {
        let duration_nanos = end.saturating_duration_since(start).as_nanos() as u64;
        let trace = Arc::new(Trace {
            trace_id: trace_id.unwrap_or_else(|| self.next_trace_id()),
            keep,
            duration_nanos,
            dropped_spans: 0,
            spans: vec![SpanRecord {
                id: 1,
                parent: 0,
                name: name.into(),
                start_nanos: 0,
                end_nanos: duration_nanos,
            }],
        });
        self.store.push(Arc::clone(&trace));
        trace
    }

    /// Whether an unsampled request's latency alone warrants tail
    /// sampling.
    pub fn is_slow(&self, elapsed: Duration) -> bool {
        elapsed >= self.config.slow_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_tree_records_and_sorts() {
        let t = ActiveTrace::begin(42, 16);
        let root = t.start_span("request", 0);
        let root_id = root.id();
        {
            let child = t.start_span("queue_wait", root_id);
            let grandchild = t.start_span("execute", child.id());
            grandchild.finish();
        }
        root.finish();
        let done = t.complete(KeepReason::Sampled);
        assert_eq!(done.trace_id, 42);
        assert_eq!(done.spans.len(), 3);
        assert_eq!(done.root_name(), "request");
        // Every span's end offset fits inside the trace duration.
        assert!(done
            .spans
            .iter()
            .all(|s| s.end_nanos <= done.duration_nanos));
        let text = done.render_text();
        assert!(text.contains("request"), "{text}");
        assert!(text.contains("queue_wait"), "{text}");
        let json = done.to_json();
        assert!(json.contains("\"name\":\"execute\""), "{json}");
        assert!(json.contains("\"keep\":\"sampled\""), "{json}");
    }

    #[test]
    fn adopt_continues_span_ids_above_parent() {
        let ctx = TraceContext {
            trace_id: 7,
            parent_span: 3,
            sampled: true,
        };
        let t = ActiveTrace::adopt(&ctx, Instant::now(), 16);
        let s = t.start_span("server", ctx.parent_span);
        assert_eq!(s.id(), 4);
        s.finish();
        let done = t.complete(KeepReason::Sampled);
        // The server root's parent (3) is absent locally → it renders
        // as a segment root, not a cycle.
        assert_eq!(done.root_name(), "server");
    }

    #[test]
    fn span_cap_counts_drops() {
        let t = ActiveTrace::begin(1, 2);
        for _ in 0..5 {
            t.start_span("s", 0).finish();
        }
        let done = t.complete(KeepReason::Sampled);
        assert_eq!(done.spans.len(), 2);
        assert_eq!(done.dropped_spans, 3);
    }

    #[test]
    fn head_sampling_rate() {
        let tracer = Tracer::new(TraceConfig {
            sample_one_in: 4,
            ..TraceConfig::default()
        });
        let sampled = (0..16).filter(|_| tracer.head_sample()).count();
        assert_eq!(sampled, 4);
        let off = Tracer::new(TraceConfig {
            sample_one_in: 0,
            ..TraceConfig::default()
        });
        assert!((0..16).all(|_| !off.head_sample()));
        assert!(off.mint(Instant::now()).is_none());
    }

    #[test]
    fn tracer_completes_and_tail_samples() {
        let tracer = Tracer::new(TraceConfig {
            sample_one_in: 1,
            slow_threshold: Duration::from_secs(3600),
            store_capacity: 8,
            max_spans: 16,
        });
        let t = tracer.mint(Instant::now()).expect("1-in-1 sampling");
        t.start_span("request", 0).finish();
        tracer.complete(&t, KeepReason::Sampled);

        let now = Instant::now();
        tracer.tail_sample(Some(99), "shed.fold_in", KeepReason::Shed, now, now);
        let stored = tracer.store().snapshot();
        assert_eq!(stored.len(), 2);
        // Newest first.
        assert_eq!(stored[0].trace_id, 99);
        assert_eq!(stored[0].keep, KeepReason::Shed);
        assert_eq!(stored[0].spans.len(), 1);
    }

    #[test]
    fn slow_upgrade_on_complete() {
        let tracer = Tracer::new(TraceConfig {
            sample_one_in: 1,
            slow_threshold: Duration::from_nanos(1),
            store_capacity: 8,
            max_spans: 16,
        });
        let earlier = Instant::now() - Duration::from_millis(5);
        let t = ActiveTrace::begin_at(tracer.next_trace_id(), earlier, 16);
        t.record_between("request", 0, earlier, Instant::now());
        let done = tracer.complete(&t, KeepReason::Sampled);
        assert_eq!(done.keep, KeepReason::Slow);
    }

    #[test]
    fn trace_ids_are_distinct_and_nonzero() {
        let tracer = Tracer::new(TraceConfig::default());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = tracer.next_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn keep_reason_round_trips() {
        for k in [
            KeepReason::Sampled,
            KeepReason::Slow,
            KeepReason::Shed,
            KeepReason::DeadlineExceeded,
            KeepReason::Error,
        ] {
            assert_eq!(KeepReason::from_u8(k.as_u8()), Some(k));
        }
        assert_eq!(KeepReason::from_u8(200), None);
    }
}
