//! Format tests for the Prometheus text exposition output: `# TYPE`
//! lines, label escaping, stable ordering, summary rendering.

use cpd_telemetry::Registry;

#[test]
fn type_lines_and_series_render() {
    let r = Registry::new();
    r.counter("cpd_z_total", "last family", &[]).add(7);
    let g = r.gauge("cpd_a_gauge", "first family", &[("shard", "0")]);
    g.set(3.25);
    let h = r.histogram("cpd_m_seconds", "latency", &[("class", "ranking")]);
    for _ in 0..100 {
        h.record(1_000_000); // 1 ms
    }

    let text = r.render_prometheus();

    assert!(text.contains("# HELP cpd_a_gauge first family\n"));
    assert!(text.contains("# TYPE cpd_a_gauge gauge\n"));
    assert!(text.contains("cpd_a_gauge{shard=\"0\"} 3.25\n"));

    assert!(text.contains("# TYPE cpd_z_total counter\n"));
    assert!(text.contains("cpd_z_total 7\n"));

    assert!(text.contains("# TYPE cpd_m_seconds summary\n"));
    assert!(text.contains("cpd_m_seconds{class=\"ranking\",quantile=\"0.5\"}"));
    assert!(text.contains("cpd_m_seconds{class=\"ranking\",quantile=\"0.99\"}"));
    assert!(text.contains("cpd_m_seconds{class=\"ranking\",quantile=\"0.999\"}"));
    assert!(text.contains("cpd_m_seconds_count{class=\"ranking\"} 100\n"));
    assert!(text.contains("cpd_m_seconds_sum{class=\"ranking\"} 0.1\n"));

    // All samples were 1 ms; the p50 midpoint readout must stay
    // within the bucket's relative error of 0.001 s.
    let p50_line = text
        .lines()
        .find(|l| l.contains("quantile=\"0.5\""))
        .expect("p50 series present");
    let v: f64 = p50_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!((v - 0.001).abs() <= 0.001 / 8.0, "p50 was {v}");
}

#[test]
fn families_and_series_are_sorted() {
    let r = Registry::new();
    r.counter("cpd_bbb_total", "b", &[]).inc();
    r.counter("cpd_aaa_total", "a", &[]).inc();
    r.gauge("cpd_mid", "m", &[("class", "zeta")]).set(1.0);
    r.gauge("cpd_mid", "m", &[("class", "alpha")]).set(2.0);

    let text = r.render_prometheus();
    let a = text.find("cpd_aaa_total").unwrap();
    let b = text.find("cpd_bbb_total").unwrap();
    let m = text.find("cpd_mid").unwrap();
    assert!(a < b && b < m, "families must sort by name");

    let alpha = text.find("class=\"alpha\"").unwrap();
    let zeta = text.find("class=\"zeta\"").unwrap();
    assert!(alpha < zeta, "series must sort by label set");

    // Rendering twice is byte-identical (stable ordering).
    assert_eq!(text, r.render_prometheus());
}

#[test]
fn label_values_are_escaped() {
    let r = Registry::new();
    r.counter("cpd_esc_total", "escaping", &[("path", "a\\b\"c\nd")])
        .inc();
    let text = r.render_prometheus();
    assert!(
        text.contains("cpd_esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
        "got: {text}"
    );
    // The raw newline must not survive into the exposition output.
    assert!(!text.contains("c\nd"));
}

#[test]
fn events_ring_and_uptime() {
    let r = Registry::new();
    r.event("reload", "generation 2");
    let events = r.events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].kind, "reload");
    assert!(events[0].at_seconds >= 0.0);
    assert!(r.uptime_seconds() >= events[0].at_seconds);
}
