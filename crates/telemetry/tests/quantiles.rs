//! Property test: histogram quantiles track exact sorted-sample
//! quantiles within one bucket's relative error, across magnitudes.

use cpd_telemetry::Histogram;
use proptest::prelude::*;

/// The bucketing splits every octave into 8 slots, so a bucket's
/// width is at most 1/8 of its lower bound; the midpoint readout is
/// therefore within 1/16 of any sample in the bucket. Assert the
/// looser "one bucket" bound of 1/8 plus an absolute slack of 1.0 ns
/// for the exact low buckets.
fn close(got: f64, exact: f64) -> bool {
    (got - exact).abs() <= exact / 8.0 + 1.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn quantiles_match_exact_within_bucket_error(
        // Magnitude exponent spreads samples from ~1ns to ~100s.
        exp in 0u32..11,
        raw in prop::collection::vec(1u64..10_000, 10..400),
    ) {
        let scale = 10u64.pow(exp);
        let mut vals: Vec<u64> = raw.iter().map(|&v| v.saturating_mul(scale)).collect();

        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();

        prop_assert_eq!(h.count(), vals.len() as u64);
        let exact_sum: u64 = vals.iter().sum();
        prop_assert_eq!(h.sum_nanos(), exact_sum);

        for &q in &[0.5f64, 0.9, 0.99, 0.999] {
            let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let exact = vals[rank - 1] as f64;
            let got = h.quantile(q);
            prop_assert!(
                close(got, exact),
                "q={} got={} exact={} (n={}, scale={})",
                q, got, exact, vals.len(), scale
            );
        }
    }
}

#[test]
fn empty_histogram_reads_zero() {
    let h = Histogram::new();
    assert_eq!(h.quantile(0.5), 0.0);
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum_nanos(), 0);
}
