//! Content-word filter — the POS-tagger substitution.
//!
//! The paper tags every token with the Stanford POS tagger and keeps only
//! nouns, verbs and hashtags. The tagger exists solely to strip function
//! words before topic modelling, so we substitute a deterministic
//! heuristic with the same effect (DESIGN.md §3):
//!
//! * hashtags always pass;
//! * stop words are dropped;
//! * tokens shorter than 3 characters are dropped;
//! * purely numeric tokens are dropped;
//! * `-ly` adverbs (length > 4) are dropped.

use crate::stopwords::is_stopword;

/// Should `token` (lowercased) be kept as a content word?
pub fn is_content_word(token: &str) -> bool {
    if token.starts_with('#') {
        return token.len() > 1;
    }
    if token.len() < 3 {
        return false;
    }
    if is_stopword(token) {
        return false;
    }
    if token.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    if token.len() > 4 && token.ends_with("ly") {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_content_words() {
        for w in ["network", "wireless", "learning", "router", "#iphone"] {
            assert!(is_content_word(w), "{w}");
        }
    }

    #[test]
    fn drops_function_words_and_noise() {
        for w in ["the", "is", "at", "12", "2016", "really", "quickly"] {
            assert!(!is_content_word(w), "{w}");
        }
    }

    #[test]
    fn short_ly_words_survive() {
        // The -ly adverb rule only fires above 4 characters, so short
        // content words ending in "ly" survive.
        assert!(is_content_word("fly"));
        assert!(is_content_word("july"));
        assert!(!is_content_word("really"));
    }

    #[test]
    fn bare_hash_is_dropped() {
        assert!(!is_content_word("#"));
    }
}
