//! Text preprocessing substrate.
//!
//! Reproduces the paper's corpus preparation (Sect. 6.1): lowercasing and
//! tokenisation, stop-word removal, Porter stemming, a content-word filter
//! standing in for the Stanford POS tagger ("we only kept nouns, verbs and
//! hashtags"), pruning of documents with fewer than two remaining words,
//! and vocabulary construction with frequency pruning.
//!
//! The POS tagger substitution is documented in `DESIGN.md` §3: the filter
//! keeps hashtags, drops stop words / short tokens / pure numbers / common
//! adverb ("-ly") forms — i.e. it removes function words before topic
//! modelling, which is all the tagger was used for.

pub mod filter;
pub mod pipeline;
pub mod stemmer;
pub mod stopwords;
pub mod tokenizer;
pub mod vocab;

pub use pipeline::{Pipeline, PipelineConfig, ProcessedCorpus, RawDocument};
pub use stemmer::porter_stem;
pub use stopwords::is_stopword;
pub use tokenizer::tokenize;
pub use vocab::Vocabulary;
