//! The end-to-end corpus pipeline: raw text → `social_graph::Document`s.

use crate::filter::is_content_word;
use crate::stemmer::porter_stem;
use crate::tokenizer::tokenize;
use crate::vocab::Vocabulary;
use social_graph::{Document, UserId, WordId};

/// A raw input document before preprocessing.
#[derive(Debug, Clone)]
pub struct RawDocument {
    /// Author user id (caller-assigned, dense).
    pub author: UserId,
    /// Raw text.
    pub text: String,
    /// Discrete timestamp bucket.
    pub timestamp: u32,
}

/// Pipeline configuration. Defaults mirror the paper's preprocessing.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Apply the Porter stemmer.
    pub stem: bool,
    /// Apply the content-word (POS-substitute) filter.
    pub content_filter: bool,
    /// Drop documents with fewer than this many surviving tokens
    /// (the paper uses 2).
    pub min_doc_tokens: usize,
    /// Drop words occurring fewer than this many times corpus-wide.
    pub min_word_count: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            stem: true,
            content_filter: true,
            min_doc_tokens: 2,
            min_word_count: 1,
        }
    }
}

/// Pipeline output: surviving documents (with dense word ids), the final
/// vocabulary, and bookkeeping about what was dropped.
#[derive(Debug)]
pub struct ProcessedCorpus {
    /// Documents that survived preprocessing, in input order.
    pub docs: Vec<Document>,
    /// For each surviving doc, the index of its raw input document.
    pub source_index: Vec<usize>,
    /// Final (pruned) vocabulary.
    pub vocab: Vocabulary,
    /// Number of raw documents dropped (too few tokens after filtering).
    pub dropped_docs: usize,
}

/// The preprocessing pipeline (Sect. 6.1 of the paper).
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Self { config }
    }

    /// Tokenise one text into processed word strings.
    pub fn process_text(&self, text: &str) -> Vec<String> {
        tokenize(text)
            .into_iter()
            .filter(|t| !self.config.content_filter || is_content_word(t))
            .map(|t| if self.config.stem { porter_stem(&t) } else { t })
            .collect()
    }

    /// Run the full pipeline over a corpus.
    pub fn process_corpus(&self, raw: &[RawDocument]) -> ProcessedCorpus {
        // Pass 1: tokenise + intern everything to get corpus-wide counts.
        let mut vocab = Vocabulary::new();
        let tokenised: Vec<Vec<WordId>> = raw
            .iter()
            .map(|r| {
                self.process_text(&r.text)
                    .iter()
                    .map(|w| vocab.intern(w))
                    .collect()
            })
            .collect();

        // Pass 2: prune rare words, remap, drop short documents.
        let (final_vocab, remap) = vocab.prune(self.config.min_word_count);
        let mut docs = Vec::new();
        let mut source_index = Vec::new();
        let mut dropped = 0usize;
        for (i, words) in tokenised.into_iter().enumerate() {
            let kept: Vec<WordId> = words.into_iter().filter_map(|w| remap[w.index()]).collect();
            if kept.len() >= self.config.min_doc_tokens {
                docs.push(Document::new(raw[i].author, kept, raw[i].timestamp));
                source_index.push(i);
            } else {
                dropped += 1;
            }
        }
        ProcessedCorpus {
            docs,
            source_index,
            vocab: final_vocab,
            dropped_docs: dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(author: u32, text: &str, t: u32) -> RawDocument {
        RawDocument {
            author: UserId(author),
            text: text.to_string(),
            timestamp: t,
        }
    }

    #[test]
    fn full_pipeline_stems_and_filters() {
        let p = Pipeline::default();
        let toks = p.process_text("The networks are quickly LEARNING about #iPhone!");
        assert_eq!(toks, vec!["network", "learn", "#iphone"]);
    }

    #[test]
    fn corpus_drops_short_docs() {
        let p = Pipeline::default();
        let corpus = p.process_corpus(&[
            raw(0, "wireless networks routing protocols", 0),
            raw(1, "the and of", 1), // all stop words -> dropped
            raw(1, "deep learning models", 2),
        ]);
        assert_eq!(corpus.docs.len(), 2);
        assert_eq!(corpus.dropped_docs, 1);
        assert_eq!(corpus.source_index, vec![0, 2]);
        assert_eq!(corpus.docs[1].author, UserId(1));
        assert_eq!(corpus.docs[1].timestamp, 2);
    }

    #[test]
    fn min_word_count_prunes_rare_words() {
        let p = Pipeline::new(PipelineConfig {
            min_word_count: 2,
            ..Default::default()
        });
        let corpus = p.process_corpus(&[
            raw(0, "network routing network protocols", 0),
            raw(0, "network protocols design", 0),
        ]);
        // "routing" and "design" occur once -> pruned.
        assert!(corpus.vocab.id_of("rout").is_none());
        assert!(corpus.vocab.id_of("design").is_none());
        assert!(corpus.vocab.id_of("network").is_some());
        // Word ids in docs are all < vocab len.
        for d in &corpus.docs {
            for w in &d.words {
                assert!(w.index() < corpus.vocab.len());
            }
        }
    }

    #[test]
    fn ids_are_stable_across_docs() {
        let p = Pipeline::default();
        let corpus =
            p.process_corpus(&[raw(0, "wireless network", 0), raw(1, "network security", 0)]);
        let net = corpus.vocab.id_of("network").unwrap();
        assert!(corpus.docs[0].words.contains(&net));
        assert!(corpus.docs[1].words.contains(&net));
    }

    #[test]
    fn empty_corpus_is_fine() {
        let p = Pipeline::default();
        let corpus = p.process_corpus(&[]);
        assert!(corpus.docs.is_empty());
        assert_eq!(corpus.vocab.len(), 0);
    }
}
