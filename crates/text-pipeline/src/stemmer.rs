//! The classic Porter (1980) stemming algorithm, operating on ASCII
//! lowercase words. Hashtag tokens (`#...`) pass through unstemmed.

/// Stem `word` with the Porter algorithm. Words shorter than 3 characters
/// and hashtags are returned unchanged (lowercased input expected).
pub fn porter_stem(word: &str) -> String {
    if word.starts_with('#') || word.len() < 3 || !word.bytes().all(|b| b.is_ascii_alphabetic()) {
        return word.to_string();
    }
    let mut s = Stem {
        b: word.as_bytes().to_vec(),
    };
    s.step1ab();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5();
    String::from_utf8(s.b).expect("ascii in, ascii out")
}

struct Stem {
    b: Vec<u8>,
}

impl Stem {
    fn len(&self) -> usize {
        self.b.len()
    }

    /// Is `b[i]` a consonant (in-word sense: `y` after a consonant is a
    /// vowel)?
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => i == 0 || !self.is_consonant(i - 1),
            _ => true,
        }
    }

    /// The measure `m` of `b[..k]`: number of VC sequences.
    fn measure(&self, k: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // Skip initial consonants.
        while i < k && self.is_consonant(i) {
            i += 1;
        }
        loop {
            // In vowels.
            while i < k && !self.is_consonant(i) {
                i += 1;
            }
            if i >= k {
                return m;
            }
            m += 1;
            // In consonants.
            while i < k && self.is_consonant(i) {
                i += 1;
            }
            if i >= k {
                return m;
            }
        }
    }

    /// Does the stem `b[..k]` contain a vowel?
    fn has_vowel(&self, k: usize) -> bool {
        (0..k).any(|i| !self.is_consonant(i))
    }

    /// Does `b[..k]` end in a double consonant?
    fn ends_double_consonant(&self, k: usize) -> bool {
        k >= 2 && self.b[k - 1] == self.b[k - 2] && self.is_consonant(k - 1)
    }

    /// Does `b[..k]` end consonant-vowel-consonant, where the final
    /// consonant is not `w`, `x` or `y`?
    fn ends_cvc(&self, k: usize) -> bool {
        if k < 3
            || !self.is_consonant(k - 1)
            || self.is_consonant(k - 2)
            || !self.is_consonant(k - 3)
        {
            return false;
        }
        !matches!(self.b[k - 1], b'w' | b'x' | b'y')
    }

    fn ends_with(&self, suffix: &str) -> bool {
        self.b.ends_with(suffix.as_bytes())
    }

    /// Length of the stem if `suffix` were removed.
    fn stem_len(&self, suffix: &str) -> usize {
        self.len() - suffix.len()
    }

    fn truncate_to(&mut self, k: usize) {
        self.b.truncate(k);
    }

    fn replace_suffix(&mut self, suffix: &str, replacement: &str) {
        let k = self.stem_len(suffix);
        self.b.truncate(k);
        self.b.extend_from_slice(replacement.as_bytes());
    }

    /// `(m > 0) suffix -> replacement`; returns true if the suffix matched
    /// (whether or not the condition held).
    fn r(&mut self, suffix: &str, replacement: &str, min_m: usize) -> bool {
        if self.ends_with(suffix) {
            let k = self.stem_len(suffix);
            if self.measure(k) > min_m - 1 {
                self.replace_suffix(suffix, replacement);
            }
            true
        } else {
            false
        }
    }

    fn step1ab(&mut self) {
        // Step 1a.
        if self.ends_with("sses") {
            self.replace_suffix("sses", "ss");
        } else if self.ends_with("ies") {
            self.replace_suffix("ies", "i");
        } else if !self.ends_with("ss") && self.ends_with("s") {
            self.replace_suffix("s", "");
        }
        // Step 1b.
        let mut cleanup = false;
        if self.ends_with("eed") {
            if self.measure(self.stem_len("eed")) > 0 {
                self.replace_suffix("eed", "ee");
            }
        } else if self.ends_with("ed") && self.has_vowel(self.stem_len("ed")) {
            self.replace_suffix("ed", "");
            cleanup = true;
        } else if self.ends_with("ing") && self.has_vowel(self.stem_len("ing")) {
            self.replace_suffix("ing", "");
            cleanup = true;
        }
        if cleanup {
            if self.ends_with("at") {
                self.replace_suffix("at", "ate");
            } else if self.ends_with("bl") {
                self.replace_suffix("bl", "ble");
            } else if self.ends_with("iz") {
                self.replace_suffix("iz", "ize");
            } else if self.ends_double_consonant(self.len())
                && !matches!(self.b[self.len() - 1], b'l' | b's' | b'z')
            {
                self.truncate_to(self.len() - 1);
            } else if self.measure(self.len()) == 1 && self.ends_cvc(self.len()) {
                self.b.push(b'e');
            }
        }
    }

    fn step1c(&mut self) {
        if self.ends_with("y") && self.has_vowel(self.stem_len("y")) {
            let k = self.len();
            self.b[k - 1] = b'i';
        }
    }

    fn step2(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
        ];
        for (suffix, replacement) in RULES {
            if self.r(suffix, replacement, 1) {
                return;
            }
        }
    }

    fn step3(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for (suffix, replacement) in RULES {
            if self.r(suffix, replacement, 1) {
                return;
            }
        }
    }

    fn step4(&mut self) {
        const RULES: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ion",
            "ou", "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        for suffix in RULES {
            if self.ends_with(suffix) {
                let k = self.stem_len(suffix);
                if self.measure(k) > 1 {
                    // "ion" additionally requires the stem to end in s or t.
                    if *suffix == "ion"
                        && !matches!(self.b.get(k.wrapping_sub(1)), Some(b's') | Some(b't'))
                    {
                        return;
                    }
                    self.truncate_to(k);
                }
                return;
            }
        }
    }

    fn step5(&mut self) {
        // Step 5a.
        if self.ends_with("e") {
            let k = self.stem_len("e");
            let m = self.measure(k);
            if m > 1 || (m == 1 && !self.ends_cvc(k)) {
                self.truncate_to(k);
            }
        }
        // Step 5b.
        let k = self.len();
        if self.measure(k) > 1 && self.ends_double_consonant(k) && self.b[k - 1] == b'l' {
            self.truncate_to(k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(pairs: &[(&str, &str)]) {
        for (input, want) in pairs {
            assert_eq!(porter_stem(input), *want, "stem({input})");
        }
    }

    #[test]
    fn step1_plurals_and_participles() {
        check(&[
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
        ]);
    }

    #[test]
    fn step1b_cleanup_rules() {
        check(&[
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
        ]);
    }

    #[test]
    fn y_to_i() {
        check(&[("happy", "happi"), ("sky", "sky")]);
    }

    #[test]
    fn derivational_suffixes() {
        check(&[
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
        ]);
    }

    #[test]
    fn step3_and_4() {
        check(&[
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
        ]);
    }

    #[test]
    fn step5_final_e_and_double_l() {
        check(&[
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ]);
    }

    #[test]
    fn community_domain_words_collapse() {
        // Words that must land on the same stem for the profiles to merge.
        assert_eq!(porter_stem("communities"), porter_stem("communiti"));
        assert_eq!(porter_stem("networks"), "network");
        assert_eq!(porter_stem("networking"), "network");
        assert_eq!(porter_stem("retweets"), "retweet");
        assert_eq!(porter_stem("learning"), "learn");
    }

    #[test]
    fn hashtags_and_short_words_pass_through() {
        assert_eq!(porter_stem("#iphone"), "#iphone");
        assert_eq!(porter_stem("go"), "go");
        assert_eq!(porter_stem("6s"), "6s");
    }
}
