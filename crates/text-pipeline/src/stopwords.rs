//! A compact English stop-word list (function words; the usual SMART-style
//! core set), checked by binary search over a sorted static table.

/// Sorted stop-word table.
static STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any", "are",
    "arent", "as", "at", "be", "because", "been", "before", "being", "below", "between", "both",
    "but", "by", "can", "cannot", "cant", "could", "couldnt", "did", "didnt", "do", "does",
    "doesnt", "doing", "dont", "down", "during", "each", "few", "for", "from", "further", "had",
    "hadnt", "has", "hasnt", "have", "havent", "having", "he", "hed", "hell", "her", "here",
    "hers", "herself", "hes", "him", "himself", "his", "how", "hows", "i", "id", "if", "ill",
    "im", "in", "into", "is", "isnt", "it", "its", "itself", "ive", "just", "lets", "me", "more",
    "most", "mustnt", "my", "myself", "no", "nor", "not", "now", "of", "off", "on", "once",
    "only", "or", "other", "ought", "our", "ours", "ourselves", "out", "over", "own", "rt",
    "same", "shant", "she", "shed", "shell", "shes", "should", "shouldnt", "so", "some", "such",
    "than", "that", "thats", "the", "their", "theirs", "them", "themselves", "then", "there",
    "theres", "these", "they", "theyd", "theyll", "theyre", "theyve", "this", "those", "through",
    "to", "too", "under", "until", "up", "us", "very", "via", "was", "wasnt", "we", "wed",
    "well", "were", "werent", "weve", "what", "whats", "when", "whens", "where", "wheres",
    "which", "while", "who", "whom", "whos", "why", "whys", "will", "with", "wont", "would",
    "wouldnt", "you", "youd", "youll", "your", "youre", "yours", "yourself", "yourselves",
    "youve",
];

/// True if `word` (already lowercased, apostrophes removed) is a stop word.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_deduped() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "out of order: {} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn common_function_words_hit() {
        for w in ["the", "and", "is", "dont", "rt", "via"] {
            assert!(is_stopword(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_miss() {
        for w in ["network", "wireless", "deep", "learning", "#iphone"] {
            assert!(!is_stopword(w), "{w} should not be a stop word");
        }
    }
}
