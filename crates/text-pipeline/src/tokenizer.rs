//! Lowercasing tokenizer that preserves hashtags.

/// Split `text` into lowercase tokens. Alphanumeric runs become tokens;
/// a `#` immediately preceding an alphanumeric run is kept as part of the
/// token (hashtags are first-class content in the paper's Twitter
/// experiments). Apostrophes inside words are dropped (`don't` → `dont`).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut chars = text.chars().peekable();
    while let Some(ch) = chars.next() {
        if ch == '#' {
            // Start a hashtag only if it begins a token and is followed by
            // an alphanumeric character; mid-token it acts as a separator.
            if current.is_empty() && chars.peek().is_some_and(|c| c.is_alphanumeric()) {
                current.push('#');
            } else if !current.is_empty() && current != "#" {
                tokens.push(std::mem::take(&mut current));
            }
        } else if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if ch == '\'' && !current.is_empty() {
            // swallow intra-word apostrophes
        } else if !current.is_empty() {
            if current != "#" {
                tokens.push(std::mem::take(&mut current));
            } else {
                current.clear();
            }
        }
    }
    if !current.is_empty() && current != "#" {
        tokens.push(current);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(
            tokenize("Deep Learning, for Software!"),
            vec!["deep", "learning", "for", "software"]
        );
    }

    #[test]
    fn preserves_hashtags() {
        assert_eq!(
            tokenize("Buy the new #iPhone now"),
            vec!["buy", "the", "new", "#iphone", "now"]
        );
    }

    #[test]
    fn hash_mid_token_is_a_separator() {
        assert_eq!(tokenize("a#b"), vec!["a", "b"]);
        assert_eq!(tokenize("# alone"), vec!["alone"]);
    }

    #[test]
    fn apostrophes_are_swallowed() {
        assert_eq!(tokenize("don't can't"), vec!["dont", "cant"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ###").is_empty());
    }

    #[test]
    fn numbers_are_tokens() {
        assert_eq!(tokenize("iphone 6s"), vec!["iphone", "6s"]);
    }
}
