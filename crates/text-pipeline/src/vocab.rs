//! Word ↔ id vocabulary with frequency pruning.

use social_graph::WordId;
use std::collections::HashMap;

/// Bidirectional word/id map with occurrence counts.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    words: Vec<String>,
    index: HashMap<String, u32>,
    counts: Vec<u64>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if no words have been added.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Intern `word`, bumping its count; returns its id.
    pub fn intern(&mut self, word: &str) -> WordId {
        if let Some(&id) = self.index.get(word) {
            self.counts[id as usize] += 1;
            return WordId(id);
        }
        let id = self.words.len() as u32;
        self.words.push(word.to_string());
        self.index.insert(word.to_string(), id);
        self.counts.push(1);
        WordId(id)
    }

    /// Look up an existing word.
    pub fn id_of(&self, word: &str) -> Option<WordId> {
        self.index.get(word).map(|&id| WordId(id))
    }

    /// The word for `id`.
    pub fn word(&self, id: WordId) -> &str {
        &self.words[id.index()]
    }

    /// Occurrence count of `id`.
    pub fn count(&self, id: WordId) -> u64 {
        self.counts[id.index()]
    }

    /// Build a pruned vocabulary keeping only words with at least
    /// `min_count` occurrences. Returns the new vocabulary and an
    /// old-id → new-id map (`None` for pruned words). Counts carry over.
    pub fn prune(&self, min_count: u64) -> (Vocabulary, Vec<Option<WordId>>) {
        let mut out = Vocabulary::new();
        let mut remap = vec![None; self.words.len()];
        for (i, w) in self.words.iter().enumerate() {
            if self.counts[i] >= min_count {
                let id = out.words.len() as u32;
                out.words.push(w.clone());
                out.index.insert(w.clone(), id);
                out.counts.push(self.counts[i]);
                remap[i] = Some(WordId(id));
            }
        }
        (out, remap)
    }

    /// Iterate `(word, count)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.words
            .iter()
            .zip(self.counts.iter())
            .map(|(w, &c)| (w.as_str(), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_counts() {
        let mut v = Vocabulary::new();
        let a = v.intern("network");
        let b = v.intern("wireless");
        let a2 = v.intern("network");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.count(a), 2);
        assert_eq!(v.count(b), 1);
        assert_eq!(v.word(a), "network");
        assert_eq!(v.len(), 2);
        assert_eq!(v.id_of("wireless"), Some(b));
        assert_eq!(v.id_of("router"), None);
    }

    #[test]
    fn pruning_remaps_ids_densely() {
        let mut v = Vocabulary::new();
        for _ in 0..3 {
            v.intern("common");
        }
        v.intern("rare");
        for _ in 0..2 {
            v.intern("medium");
        }
        let (pruned, remap) = v.prune(2);
        assert_eq!(pruned.len(), 2);
        assert_eq!(pruned.word(WordId(0)), "common");
        assert_eq!(pruned.word(WordId(1)), "medium");
        assert_eq!(remap[0], Some(WordId(0)));
        assert_eq!(remap[1], None); // "rare"
        assert_eq!(remap[2], Some(WordId(1)));
        assert_eq!(pruned.count(WordId(0)), 3);
    }
}
