//! Property-based tests for the text pipeline: total functions over
//! arbitrary input, stable invariants of the tokenizer / stemmer /
//! vocabulary.

use proptest::prelude::*;
use social_graph::UserId;
use text_pipeline::{porter_stem, tokenize, Pipeline, PipelineConfig, RawDocument, Vocabulary};

proptest! {
    #[test]
    fn tokenizer_never_panics_and_produces_clean_tokens(s in ".{0,200}") {
        let tokens = tokenize(&s);
        for t in &tokens {
            prop_assert!(!t.is_empty());
            // No whitespace or punctuation survives except a leading '#'.
            let body = t.strip_prefix('#').unwrap_or(t);
            prop_assert!(!body.is_empty(), "bare # token");
            prop_assert!(
                body.chars().all(|c| c.is_alphanumeric()),
                "dirty token {t:?} from {s:?}"
            );
            // Tokens are lowercased: no character has a *different*
            // lowercase form left (some uppercase code points, e.g. 🅐,
            // have no lowercase mapping and pass through unchanged).
            prop_assert!(
                t.chars().all(|c| c.to_lowercase().next() == Some(c)),
                "{t:?}"
            );
        }
    }

    #[test]
    fn tokenizer_is_idempotent_on_its_output(s in "[a-zA-Z0-9# ]{0,100}") {
        let once = tokenize(&s);
        let again: Vec<String> = once.iter().flat_map(|t| tokenize(t)).collect();
        prop_assert_eq!(once, again);
    }

    #[test]
    fn stemmer_is_total_and_never_grows_alpha_words(w in "[a-z]{1,20}") {
        let stem = porter_stem(&w);
        prop_assert!(!stem.is_empty());
        prop_assert!(stem.len() <= w.len() + 1, "{w} -> {stem}");
        // Porter stems are prefixes of the word up to the final few
        // characters (no rewriting of word-initial material).
        let common: usize = stem
            .bytes()
            .zip(w.bytes())
            .take_while(|(a, b)| a == b)
            .count();
        prop_assert!(common >= stem.len().saturating_sub(3), "{w} -> {stem}");
    }

    #[test]
    fn stemmer_passes_non_alpha_through(w in "[a-z0-9#]{1,15}") {
        prop_assume!(!w.bytes().all(|b| b.is_ascii_alphabetic()));
        prop_assert_eq!(porter_stem(&w), w);
    }

    #[test]
    fn vocabulary_ids_are_dense_and_stable(words in prop::collection::vec("[a-z]{1,8}", 1..60)) {
        let mut v = Vocabulary::new();
        let ids: Vec<_> = words.iter().map(|w| v.intern(w)).collect();
        // Dense: every id < len.
        for id in &ids {
            prop_assert!(id.index() < v.len());
        }
        // Stable: re-interning returns the same id and lookup agrees.
        for (w, id) in words.iter().zip(&ids) {
            prop_assert_eq!(v.id_of(w), Some(*id));
            prop_assert_eq!(v.word(*id), w.as_str());
        }
        // Counts sum to the number of interned tokens.
        let total: u64 = (0..v.len()).map(|i| v.count(social_graph::WordId(i as u32))).sum();
        prop_assert_eq!(total, words.len() as u64);
    }

    #[test]
    fn pipeline_respects_min_doc_tokens(texts in prop::collection::vec(".{0,80}", 1..20)) {
        let raw: Vec<RawDocument> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| RawDocument {
                author: UserId(i as u32 % 4),
                text: t.clone(),
                timestamp: 0,
            })
            .collect();
        let corpus = Pipeline::new(PipelineConfig::default()).process_corpus(&raw);
        prop_assert_eq!(corpus.docs.len() + corpus.dropped_docs, raw.len());
        for d in &corpus.docs {
            prop_assert!(d.len() >= 2);
            for w in &d.words {
                prop_assert!(w.index() < corpus.vocab.len());
            }
        }
        // source_index maps back into the raw corpus, strictly increasing.
        let mut last = None;
        for &src in &corpus.source_index {
            prop_assert!(src < raw.len());
            if let Some(l) = last {
                prop_assert!(src > l);
            }
            last = Some(src);
        }
    }
}
