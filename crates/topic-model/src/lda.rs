//! Collapsed Gibbs sampling for LDA.

use cpd_prob::categorical::sample_index;
use cpd_prob::rng::seeded_rng;
use social_graph::WordId;

/// LDA hyperparameters and run length.
#[derive(Debug, Clone)]
pub struct LdaConfig {
    /// Number of topics `|Z|`.
    pub n_topics: usize,
    /// Document-topic Dirichlet prior; `None` = the `50/|Z|` convention.
    pub alpha: Option<f64>,
    /// Topic-word Dirichlet prior (paper convention: 0.1).
    pub beta: f64,
    /// Gibbs sweeps.
    pub n_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl LdaConfig {
    /// Config with the paper's priors.
    pub fn new(n_topics: usize) -> Self {
        Self {
            n_topics,
            alpha: None,
            beta: 0.1,
            n_iters: 50,
            seed: 0,
        }
    }

    fn resolved_alpha(&self) -> f64 {
        self.alpha.unwrap_or(50.0 / self.n_topics as f64)
    }
}

/// The LDA trainer.
#[derive(Debug)]
pub struct Lda {
    config: LdaConfig,
}

/// A fitted LDA model: counts, per-token assignments and derived
/// distributions.
#[derive(Debug, Clone)]
pub struct LdaModel {
    n_topics: usize,
    vocab_size: usize,
    alpha: f64,
    beta: f64,
    /// Per-document token-topic assignments (jagged).
    assignments: Vec<Vec<u32>>,
    /// Flattened `D x Z` document-topic counts.
    n_dz: Vec<u32>,
    /// Flattened `Z x W` topic-word counts.
    n_zw: Vec<u32>,
    /// Per-topic totals.
    n_z: Vec<u32>,
}

impl Lda {
    /// Trainer with `config`.
    pub fn new(config: LdaConfig) -> Self {
        assert!(config.n_topics >= 1);
        Self { config }
    }

    /// Fit on `docs` (token lists — owned vectors or borrowed slices)
    /// over a vocabulary of `vocab_size`.
    pub fn fit<D: AsRef<[WordId]>>(&self, docs: &[D], vocab_size: usize) -> LdaModel {
        let z = self.config.n_topics;
        let alpha = self.config.resolved_alpha();
        let beta = self.config.beta;
        let mut rng = seeded_rng(self.config.seed);

        let mut model = LdaModel {
            n_topics: z,
            vocab_size,
            alpha,
            beta,
            assignments: docs.iter().map(|d| vec![0u32; d.as_ref().len()]).collect(),
            n_dz: vec![0u32; docs.len() * z],
            n_zw: vec![0u32; z * vocab_size],
            n_z: vec![0u32; z],
        };

        // Random initialisation.
        for (d, doc) in docs.iter().enumerate() {
            for (i, w) in doc.as_ref().iter().enumerate() {
                let t = (rand::Rng::gen_range(&mut rng, 0..z)) as u32;
                model.assignments[d][i] = t;
                model.n_dz[d * z + t as usize] += 1;
                model.n_zw[t as usize * vocab_size + w.index()] += 1;
                model.n_z[t as usize] += 1;
            }
        }

        let mut weights = vec![0.0f64; z];
        for _ in 0..self.config.n_iters {
            for (d, doc) in docs.iter().enumerate() {
                for (i, w) in doc.as_ref().iter().enumerate() {
                    let old = model.assignments[d][i] as usize;
                    model.n_dz[d * z + old] -= 1;
                    model.n_zw[old * vocab_size + w.index()] -= 1;
                    model.n_z[old] -= 1;

                    for (t, wt) in weights.iter_mut().enumerate() {
                        let doc_part = model.n_dz[d * z + t] as f64 + alpha;
                        let word_part = (model.n_zw[t * vocab_size + w.index()] as f64 + beta)
                            / (model.n_z[t] as f64 + vocab_size as f64 * beta);
                        *wt = doc_part * word_part;
                    }
                    let new = sample_index(&mut rng, &weights);

                    model.assignments[d][i] = new as u32;
                    model.n_dz[d * z + new] += 1;
                    model.n_zw[new * vocab_size + w.index()] += 1;
                    model.n_z[new] += 1;
                }
            }
        }
        model
    }
}

impl LdaModel {
    /// Number of topics.
    pub fn n_topics(&self) -> usize {
        self.n_topics
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Document-topic distribution `θ*_d` (smoothed, sums to 1).
    pub fn theta(&self, d: usize) -> Vec<f64> {
        let z = self.n_topics;
        let total: u32 = self.n_dz[d * z..(d + 1) * z].iter().sum();
        let denom = total as f64 + z as f64 * self.alpha;
        (0..z)
            .map(|t| (self.n_dz[d * z + t] as f64 + self.alpha) / denom)
            .collect()
    }

    /// Topic-word distribution `φ_z` (smoothed, sums to 1).
    pub fn phi(&self, t: usize) -> Vec<f64> {
        let w = self.vocab_size;
        let denom = self.n_z[t] as f64 + w as f64 * self.beta;
        (0..w)
            .map(|i| (self.n_zw[t * w + i] as f64 + self.beta) / denom)
            .collect()
    }

    /// All topic-word rows as a `Z x W` matrix.
    pub fn phi_matrix(&self) -> Vec<Vec<f64>> {
        (0..self.n_topics).map(|t| self.phi(t)).collect()
    }

    /// The most frequent topic among document `d`'s tokens
    /// (ties → smallest topic id; empty docs → topic 0).
    pub fn dominant_topic(&self, d: usize) -> usize {
        let z = self.n_topics;
        let row = &self.n_dz[d * z..(d + 1) * z];
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(t, _)| t)
            .unwrap_or(0)
    }

    /// Top-`k` word ids for topic `t` by probability.
    pub fn top_words(&self, t: usize, k: usize) -> Vec<WordId> {
        let w = self.vocab_size;
        let mut idx: Vec<usize> = (0..w).collect();
        idx.sort_by(|&a, &b| {
            self.n_zw[t * w + b]
                .cmp(&self.n_zw[t * w + a])
                .then(a.cmp(&b))
        });
        idx.into_iter().take(k).map(WordId::from).collect()
    }

    /// Training-corpus perplexity
    /// `exp(-Σ_d Σ_w ln Σ_z θ_dz φ_zw / N_tokens)`.
    pub fn perplexity<D: AsRef<[WordId]>>(&self, docs: &[D]) -> f64 {
        let mut log_lik = 0.0f64;
        let mut n_tokens = 0usize;
        let phis = self.phi_matrix();
        for (d, doc) in docs.iter().enumerate() {
            let doc = doc.as_ref();
            if doc.is_empty() {
                continue;
            }
            let theta = self.theta(d);
            for w in doc {
                let p: f64 = (0..self.n_topics)
                    .map(|t| theta[t] * phis[t][w.index()])
                    .sum();
                log_lik += p.max(1e-300).ln();
                n_tokens += 1;
            }
        }
        if n_tokens == 0 {
            return f64::NAN;
        }
        (-log_lik / n_tokens as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two cleanly separated topics: words 0-4 vs words 5-9.
    fn synthetic_corpus() -> (Vec<Vec<WordId>>, usize) {
        let mut docs = Vec::new();
        for i in 0..60 {
            let base = if i % 2 == 0 { 0u32 } else { 5 };
            let doc: Vec<WordId> = (0..8).map(|j| WordId(base + (i + j) as u32 % 5)).collect();
            docs.push(doc);
        }
        (docs, 10)
    }

    fn fit(n_topics: usize, iters: usize) -> (LdaModel, Vec<Vec<WordId>>) {
        let (docs, w) = synthetic_corpus();
        let model = Lda::new(LdaConfig {
            n_iters: iters,
            seed: 5,
            ..LdaConfig::new(n_topics)
        })
        .fit(&docs, w);
        (model, docs)
    }

    #[test]
    fn recovers_two_planted_topics() {
        let (model, docs) = fit(2, 100);
        // Every even doc should share a dominant topic, every odd doc the
        // other one.
        let t_even = model.dominant_topic(0);
        let t_odd = model.dominant_topic(1);
        assert_ne!(t_even, t_odd);
        let mut correct = 0;
        for d in 0..docs.len() {
            let want = if d % 2 == 0 { t_even } else { t_odd };
            if model.dominant_topic(d) == want {
                correct += 1;
            }
        }
        assert!(correct >= 55, "only {correct}/60 docs classified");
    }

    #[test]
    fn distributions_normalise() {
        let (model, _) = fit(3, 20);
        for d in 0..5 {
            let s: f64 = model.theta(d).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        for t in 0..3 {
            let s: f64 = model.phi(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(model.phi(t).iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn top_words_separate_topics() {
        let (model, _) = fit(2, 100);
        let t0: Vec<usize> = model.top_words(0, 5).iter().map(|w| w.index()).collect();
        let t1: Vec<usize> = model.top_words(1, 5).iter().map(|w| w.index()).collect();
        // One topic's top words live in 0..5, the other's in 5..10.
        let low0 = t0.iter().filter(|&&w| w < 5).count();
        let low1 = t1.iter().filter(|&&w| w < 5).count();
        assert!(
            (low0 >= 4 && low1 <= 1) || (low0 <= 1 && low1 >= 4),
            "t0 {t0:?} t1 {t1:?}"
        );
    }

    #[test]
    fn perplexity_improves_with_training() {
        let (docs, w) = synthetic_corpus();
        let fresh = Lda::new(LdaConfig {
            n_iters: 0,
            seed: 5,
            ..LdaConfig::new(2)
        })
        .fit(&docs, w);
        let trained = Lda::new(LdaConfig {
            n_iters: 80,
            seed: 5,
            ..LdaConfig::new(2)
        })
        .fit(&docs, w);
        assert!(
            trained.perplexity(&docs) < fresh.perplexity(&docs),
            "trained {} fresh {}",
            trained.perplexity(&docs),
            fresh.perplexity(&docs)
        );
        // Perplexity is bounded below by 1 and above by vocab size for a
        // model that has learned anything on this corpus.
        assert!(trained.perplexity(&docs) >= 1.0);
        assert!(trained.perplexity(&docs) < w as f64);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (a, docs) = fit(2, 10);
        let (b, _) = fit(2, 10);
        assert_eq!(a.dominant_topic(3), b.dominant_topic(3));
        assert_eq!(a.perplexity(&docs), b.perplexity(&docs));
    }

    #[test]
    fn handles_empty_docs() {
        let docs = vec![vec![], vec![WordId(0), WordId(1)]];
        let model = Lda::new(LdaConfig::new(2)).fit(&docs, 2);
        let theta = model.theta(0);
        assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(model.dominant_topic(0), 0);
    }
}
