//! Latent Dirichlet Allocation with collapsed Gibbs sampling.
//!
//! The paper uses plain LDA (Blei et al. 2003, sampled per Griffiths &
//! Steyvers 2004) in three places:
//!
//! 1. **Parallelisation** (Sect. 4.3): users are segmented by the dominant
//!    LDA topic of their documents before the CPD E-step is distributed.
//! 2. **Aggregation baselines** (Sect. 6.1, Eqs. 20–21): `CRM+Agg` and
//!    `COLD+Agg` aggregate per-document LDA topic distributions into
//!    community content/diffusion profiles.
//! 3. **Perplexity evaluation** (Fig. 8) compares content profiles in
//!    topic-model terms.

pub mod lda;

pub use lda::{Lda, LdaConfig, LdaModel};
