//! Campaign targeting — the paper's motivating application for
//! profile-driven community ranking (Sect. 1): a company wants to find
//! the communities most likely to retweet about its product, so it can
//! focus a marketing campaign there.
//!
//! ```sh
//! cargo run --release --example campaign_targeting
//! ```

use cpd::eval::membership::CommunityUserSets;
use cpd::prelude::*;

fn main() {
    let gen = GenConfig::twitter_like(Scale::Small);
    let (graph, _) = generate(&gen);

    // Profile the communities once, offline (remark 1 in Sect. 1).
    let config = CpdConfig {
        seed: 7,
        ..CpdConfig::experiment(gen.n_communities, gen.n_topics)
    };
    let fit = Cpd::new(config).expect("valid config").fit(&graph);
    let model = &fit.model;

    // The "product": a topical term. We use the most retweeted
    // non-headline word as the campaign keyword (in the paper this would
    // be a hashtag such as "#iPhone").
    let mut freq = vec![0usize; graph.vocab_size()];
    for l in graph.diffusions() {
        for w in &graph.doc(l.dst).words {
            freq[w.index()] += 1;
        }
    }
    let mut global = vec![0usize; graph.vocab_size()];
    for d in graph.docs() {
        for w in &d.words {
            global[w.index()] += 1;
        }
    }
    let mut head: Vec<usize> = (0..graph.vocab_size()).collect();
    head.sort_by(|&a, &b| global[b].cmp(&global[a]));
    let head: std::collections::HashSet<usize> =
        head.into_iter().take(graph.vocab_size() / 50).collect();
    let keyword = (0..graph.vocab_size())
        .filter(|w| !head.contains(w))
        .max_by_key(|&w| freq[w])
        .expect("non-empty vocabulary");
    println!(
        "campaign keyword: word {keyword} (retweeted {} times)",
        freq[keyword]
    );

    // Rank communities by their probability of diffusing the keyword
    // (Eq. 19) and report the audience each pick adds.
    let ranking = rank_communities(model, &[WordId(keyword as u32)]);
    let sets = CommunityUserSets::from_memberships(&model.pi, 5);

    // Ground truth for this campaign: users who really retweeted about
    // the keyword.
    let mut relevant = vec![false; graph.n_users()];
    for l in graph.diffusions() {
        if graph.doc(l.dst).words.iter().any(|w| w.index() == keyword) {
            relevant[graph.doc(l.src).author.index()] = true;
        }
    }
    let total_relevant = relevant.iter().filter(|&&r| r).count();
    println!("{total_relevant} users actually retweeted about the keyword\n");
    println!("top-5 communities to target:");
    let mut covered = vec![false; graph.n_users()];
    for (rank, &(c, score)) in ranking.iter().take(5).enumerate() {
        let members = sets.users(c);
        let mut new_hits = 0usize;
        for &u in members {
            if !covered[u as usize] {
                covered[u as usize] = true;
                if relevant[u as usize] {
                    new_hits += 1;
                }
            }
        }
        let reach: usize = covered.iter().filter(|&&x| x).count();
        let hits = covered
            .iter()
            .zip(&relevant)
            .filter(|(&c, &r)| c && r)
            .count();
        let topics: Vec<String> = model
            .top_topics_of_community(c, 2)
            .iter()
            .map(|&(z, p)| format!("T{z}:{p:.2}"))
            .collect();
        println!(
            "  #{:<2} c{c:02}  score {score:.3}  +{new_hits:>3} new relevant users  \
             (audience {reach}, recall {:.0}%)  profile: {}",
            rank + 1,
            100.0 * hits as f64 / total_relevant.max(1) as f64,
            topics.join(" ")
        );
    }
    println!("\nThe ranking concentrates the campaign budget on the communities whose");
    println!("diffusion profiles already carry this topic — the paper's Fig. 6 measures");
    println!("exactly this targeting quality (MAF@K).");
}
