//! A fault-injection drill against a live server — run with the
//! off-by-default `chaos` feature:
//!
//! ```text
//! cargo run --example chaos_drill --features chaos
//! ```
//!
//! The drill stands up a deliberately fragile deployment — one slowed
//! worker behind a 4-deep admission queue, reached through a chaos
//! proxy that tears the first two connections mid-reply — and drives a
//! retrying client through it. Watch for three things: the client
//! converging anyway (reconnect + backoff), typed `Overloaded` sheds
//! instead of queue growth, and health flipping Degraded → Ok once the
//! storm passes.

use cpd::chaos::{ChaosProxy, ConnPlan, Failpoints, FaultPlan};
use cpd::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Offline: a tiny fit, enough to serve real answers.
    let (graph, _) = generate(&GenConfig::twitter_like(Scale::Tiny));
    let config = CpdConfig {
        em_iters: 2,
        gibbs_sweeps: 1,
        seed: 7,
        ..CpdConfig::experiment(3, 4)
    };
    let fit = Cpd::new(config.clone()).unwrap().fit(&graph);
    let index = Arc::new(ProfileIndex::build(fit.model, &config));

    // A fragile deployment: one worker, slowed 5 ms per query by a
    // failpoint, behind a 4-deep admission queue.
    let points = Failpoints::new();
    points.delay("serve.worker_execute", Duration::from_millis(5));
    let hook = {
        let points = points.clone();
        FaultHook::new(move |point| points.hit(point))
    };
    let runtime = ServeRuntime::new(
        Arc::clone(&index),
        None,
        ServeOptions {
            workers: 1,
            max_queue_depth: 4,
            degraded_window: Duration::from_millis(500),
            fault_hook: Some(hook),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();

    // The chaos proxy: connections 0 and 1 are torn after 64 bytes of
    // responses; everything later passes clean.
    let proxy = ChaosProxy::start(server.local_addr(), |conn| {
        if conn < 2 {
            ConnPlan {
                client_to_server: FaultPlan::clean(),
                server_to_client: FaultPlan::tear_after(64),
            }
        } else {
            ConnPlan::default()
        }
    })
    .unwrap();
    println!(
        "server {} behind chaos proxy {} (first 2 connections torn)",
        server.local_addr(),
        proxy.local_addr()
    );

    // A retrying client, through the proxy, with a burst big enough to
    // overrun the queue.
    let mut client = Client::connect_with(
        proxy.local_addr(),
        ClientOptions {
            retry: Some(RetryPolicy {
                max_retries: 8,
                base_backoff: Duration::from_millis(10),
                ..RetryPolicy::default()
            }),
            ..ClientOptions::default()
        },
    )
    .unwrap();
    for round in 0..3 {
        let batch: Vec<QueryRequest> = (0..16)
            .map(|i| QueryRequest::TopWords {
                topic: i % 3,
                k: 1 + i % 4,
            })
            .collect();
        let responses = client.query_batch(batch).unwrap();
        let shed = responses
            .iter()
            .filter(|r| matches!(r, QueryResponse::Overloaded { .. }))
            .count();
        let health = client.health().unwrap();
        println!(
            "round {round}: {} answered, {shed} shed after retries, health {:?}, \
             {} connection(s) so far",
            responses.len() - shed,
            health.state,
            proxy.connections(),
        );
    }

    // Storm over: clear the injected latency and watch health settle.
    points.clear("serve.worker_execute");
    std::thread::sleep(Duration::from_millis(600));
    println!(
        "after the storm: health {:?}",
        client.health().unwrap().state
    );

    drop(client);
    proxy.shutdown();
    let report = server.shutdown();
    println!(
        "final diagnostics: {} batches, shed {}, deadline-expired {}, worker hits {}",
        report.batches,
        report.shed,
        report.deadline_exceeded,
        points.hits("serve.worker_execute"),
    );
}
