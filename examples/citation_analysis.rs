//! Citation-network analysis — the DBLP side of the paper: which
//! research communities cite which, on what topics ("software
//! engineering cites machine learning on deep learning" — the weak-ties
//! effect of Sect. 1), how open each community is, and where a funding
//! agency should disseminate a grant call.
//!
//! Exports the Fig. 7-style diffusion graphs to `target/figures/`.
//!
//! ```sh
//! cargo run --release --example citation_analysis
//! ```

use cpd::core::apps::visualization::{openness, significant_edges, to_dot, to_json};
use cpd::prelude::*;

fn main() {
    let gen = GenConfig::dblp_like(Scale::Small);
    let (graph, _) = generate(&gen);
    println!("citation network: {}", graph.stats());

    let config = CpdConfig {
        seed: 11,
        ..CpdConfig::experiment(gen.n_communities, gen.n_topics)
    };
    let fit = Cpd::new(config).expect("valid config").fit(&graph);
    let model = &fit.model;

    // --- Weak ties: the strongest *cross*-community citation channels.
    println!("\nstrongest cross-community citation channels (η aggregated over topics):");
    let mut cross: Vec<(usize, usize, f64)> = (0..model.n_communities())
        .flat_map(|a| (0..model.n_communities()).map(move |b| (a, b)))
        .filter(|&(a, b)| a != b)
        .map(|(a, b)| (a, b, model.eta.aggregate_strength(a, b)))
        .collect();
    cross.sort_by(|x, y| y.2.partial_cmp(&x.2).unwrap());
    for &(a, b, s) in cross.iter().take(3) {
        let top = model.eta.top_topics(a, b, 1)[0];
        println!(
            "  c{a:02} -> c{b:02}: strength {s:.3}, mostly on T{} ({:.4})",
            top.0, top.1
        );
    }

    // --- Openness (Sect. 6.3.3): which communities exchange ideas?
    let mut open: Vec<(usize, f64)> = (0..model.n_communities())
        .map(|c| (c, openness(model, c)))
        .collect();
    open.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "\nmost open community: c{:02} ({:.0}% of its citations leave home)",
        open[0].0,
        open[0].1 * 100.0
    );
    let closed = open.last().unwrap();
    println!(
        "most closed community: c{:02} ({:.0}%)",
        closed.0,
        closed.1 * 100.0
    );

    // --- Grant-call dissemination: rank communities for a theme.
    let theme = graph.docs()[0].words[0];
    let ranking = rank_communities(model, &[theme]);
    println!(
        "\ngrant call on word {}: disseminate via c{:02}, c{:02}, c{:02}",
        theme.0, ranking[0].0, ranking[1].0, ranking[2].0
    );

    // --- Will this new paper be cited by user u? (Eq. 18)
    let features = UserFeatures::compute(&graph);
    let cfg = CpdConfig {
        seed: 11,
        ..CpdConfig::experiment(gen.n_communities, gen.n_topics)
    };
    let predictor = DiffusionPredictor::new(model, &features, &cfg);
    let paper = DocId(0);
    let mut best: Vec<(f64, UserId)> = (0..graph.n_users().min(200))
        .map(|u| {
            let u = UserId(u as u32);
            (
                predictor.score(&graph, u, paper, graph.n_timestamps() - 1),
                u,
            )
        })
        .collect();
    best.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    println!(
        "\nmost likely future citers of paper 0: {:?} (p = {:.3}, {:.3}, {:.3})",
        best[..3].iter().map(|&(_, u)| u.0).collect::<Vec<_>>(),
        best[0].0,
        best[1].0,
        best[2].0
    );

    // --- Export the visualisations.
    let out = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out).expect("create target/figures");
    std::fs::write(
        out.join("citation_diffusion.dot"),
        to_dot(model, None, None),
    )
    .unwrap();
    std::fs::write(out.join("citation_diffusion.json"), to_json(model, None)).unwrap();
    println!(
        "\nexported citation diffusion graph ({} significant edges) to target/figures/",
        significant_edges(model, None).len()
    );
}
