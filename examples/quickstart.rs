//! Quickstart: generate a small social graph, jointly detect and profile
//! its communities, and inspect every model output.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cpd::prelude::*;

fn main() {
    // 1. A Twitter-like social graph with planted structure (stands in
    //    for the paper's 2011 Twitter crawl; see DESIGN.md §3).
    let gen = GenConfig::twitter_like(Scale::Small);
    let (graph, truth) = generate(&gen);
    println!("graph: {}", graph.stats());

    // 2. Fit CPD: joint community profiling and detection.
    let config = CpdConfig {
        seed: 42,
        ..CpdConfig::experiment(gen.n_communities, gen.n_topics)
    };
    let fit = Cpd::new(config.clone()).expect("valid config").fit(&graph);
    let model = &fit.model;
    println!(
        "fitted {} communities x {} topics in {:.1}s ({} EM iterations)",
        model.n_communities(),
        model.n_topics(),
        fit.diagnostics.total_seconds,
        fit.diagnostics.em_iterations,
    );

    // 3. Community membership (detection output, Def. 3).
    let detected = model.dominant_communities();
    let agreement = cpd::eval::nmi(&detected, &truth.dominant_community);
    println!("\ndetection vs planted communities: NMI = {agreement:.3}");

    // 4. Content profiles (Def. 4): what each community talks about.
    println!("\ncontent profiles (top-3 topics per community):");
    for c in 0..model.n_communities() {
        let topics: Vec<String> = model
            .top_topics_of_community(c, 3)
            .iter()
            .map(|&(z, p)| format!("T{z}:{p:.2}"))
            .collect();
        println!("  c{c:02}: {}", topics.join(" "));
    }

    // 5. Diffusion profiles (Def. 5): who retweets whom, on what.
    println!("\ndiffusion profile of c00 (top-3 outgoing (community, topic) cells):");
    let mut cells: Vec<(usize, usize, f64)> = (0..model.n_communities())
        .flat_map(|c2| (0..model.n_topics()).map(move |z| (c2, z)))
        .map(|(c2, z)| (c2, z, model.eta.at(0, c2, z)))
        .collect();
    cells.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    for &(c2, z, s) in cells.iter().take(3) {
        println!("  c00 -> c{c2:02} on T{z}: {s:.4}");
    }

    // 6. The three applications (Sect. 5).
    let features = UserFeatures::compute(&graph);
    let predictor = DiffusionPredictor::new(model, &features, &config);
    let link = &graph.diffusions()[0];
    let p = predictor.score(&graph, graph.doc(link.src).author, link.dst, link.at);
    println!("\ncommunity-aware diffusion: P(observed retweet) = {p:.3}");

    // Ranking routes through the serving index (`cpd-serve`): same
    // answers as the dense `rank_communities` scan, precomputed tables
    // under the hood. See `examples/serving.rs` for the full
    // fit → snapshot → serve story.
    let index = ProfileIndex::build(model.clone(), &config);
    let query = graph.docs()[0].words[0];
    let ranking = index.rank_communities(&[query]);
    assert_eq!(ranking, rank_communities(model, &[query]));
    println!(
        "community ranking for word {}: top community = c{:02} (score {:.3})",
        query.0, ranking[0].0, ranking[0].1
    );

    let dot = cpd::core::apps::visualization::to_dot(model, None, None);
    println!(
        "visualisation: DOT graph with {} lines (render with graphviz)",
        dot.lines().count()
    );
}
