//! The full serving lifecycle over a real socket: fit **offline**,
//! snapshot, start a `cpd-server` on a loopback port, drive it with the
//! TCP client — pipelined query batches, a fold-in that hits the cache
//! on its second ask, a **hot-reload** to a refreshed snapshot under a
//! live connection, a **Prometheus metrics scrape and health probe
//! over the wire** — and shut it down gracefully for the final
//! diagnostics.
//!
//! ```sh
//! cargo run --release --example server
//! ```

use cpd::prelude::*;
use std::sync::Arc;

fn fit_snapshot(seed: u64, path: &std::path::Path) -> CpdConfig {
    let gen = GenConfig::twitter_like(Scale::Tiny);
    let (graph, _) = generate(&gen);
    let config = CpdConfig {
        em_iters: 5,
        seed,
        ..CpdConfig::experiment(gen.n_communities, gen.n_topics)
    };
    let fit = Cpd::new(config.clone()).expect("valid config").fit(&graph);
    cpd::core::io::save_model(&fit.model, path).expect("snapshot");
    config
}

fn main() {
    // ---- Offline: two fits, two snapshots (e.g. tonight's and -------
    // tomorrow's nightly build of the model).
    let dir = std::env::temp_dir().join("cpd-server-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap_v1 = dir.join("model-v1.cpd");
    let snap_v2 = dir.join("model-v2.cpd");
    let config = fit_snapshot(42, &snap_v1);
    fit_snapshot(4242, &snap_v2);
    println!(
        "offline: snapshots at {} and {}",
        snap_v1.display(),
        snap_v2.display()
    );

    // ---- Server process: load v1, listen on an ephemeral port -------
    let model = cpd::core::io::load_model(&snap_v1).expect("load snapshot");
    let index = Arc::new(ProfileIndex::build(model, &config));
    let runtime = ServeRuntime::new(
        index,
        None,
        ServeOptions {
            workers: 4,
            ..ServeOptions::default()
        },
    )
    .expect("valid serve options");
    // Keep a handle on the server-side trace store before the runtime
    // moves into the transport — the slow-query log prints from it at
    // the end.
    let tracer = Arc::clone(runtime.tracer());
    let server = Server::start("127.0.0.1:0", runtime, ServerOptions::default()).expect("bind");
    println!("online: cpd-server listening on {}", server.local_addr());

    // ---- Client process: pipelined queries over TCP -----------------
    // This client head-samples every query: it records its own span
    // tree (request/send/await) locally and sends the trace context on
    // the wire, so the server's spans join the same trace ids.
    let mut client = Client::connect_with(
        server.local_addr(),
        ClientOptions {
            trace: TraceConfig {
                sample_one_in: 1,
                ..TraceConfig::default()
            },
            ..ClientOptions::default()
        },
    )
    .expect("connect");
    let responses = client
        .query_batch(vec![
            QueryRequest::RankCommunities {
                query: vec![WordId(0), WordId(1)],
            },
            QueryRequest::TopWords { topic: 0, k: 5 },
            QueryRequest::UserProfile { user: UserId(0) },
            QueryRequest::FriendshipScore {
                u: UserId(0),
                v: UserId(1),
            },
        ])
        .expect("batch");
    for (i, response) in responses.iter().enumerate() {
        match response {
            QueryResponse::Ranking(r) => {
                let head: Vec<String> = r
                    .iter()
                    .take(3)
                    .map(|&(id, s)| format!("{id}:{s:.3}"))
                    .collect();
                println!("  [{i}] ranking: {}", head.join(" "));
            }
            QueryResponse::Profile {
                membership,
                dominant,
            } => println!(
                "  [{i}] profile: dominant community c{dominant:02} (pi = {:.3})",
                membership[*dominant]
            ),
            QueryResponse::Score(s) => println!("  [{i}] link score: {s:.3}"),
            QueryResponse::FoldedIn(p) => {
                println!("  [{i}] fold-in: c{:02}", p.dominant_community())
            }
            QueryResponse::Overloaded { retry_after_ms } => {
                println!("  [{i}] shed by admission control; retry after {retry_after_ms} ms")
            }
            QueryResponse::Error(e) => println!("  [{i}] error: {e}"),
        }
    }

    // The same unseen user folded in twice: the second answer comes
    // from the generation-keyed cache, byte-identical, without
    // re-running the Gibbs chain.
    let fold = QueryRequest::FoldIn {
        item: FoldInItem::user(vec![vec![WordId(0), WordId(2)]], vec![UserId(0)]),
        seed: 7,
    };
    let first = client.query(fold.clone()).expect("fold-in");
    let second = client.query(fold).expect("fold-in again");
    let stats = client.stats().expect("stats");
    println!(
        "fold-in twice: byte-identical = {}, cache hits/misses = {}/{}",
        matches!((&first, &second), (QueryResponse::FoldedIn(a), QueryResponse::FoldedIn(b)) if a == b),
        stats.cache.hits,
        stats.cache.misses,
    );

    // ---- Hot-reload: v2 lands without restarting anything -----------
    let generation = client
        .reload(snap_v2.to_str().expect("utf8 path"))
        .expect("reload");
    println!(
        "hot-reload over the wire: now serving generation {generation} \
         (in-flight batches finished on generation 1)"
    );

    // ---- Observability over the wire --------------------------------
    // `Health` is what a load balancer polls: readiness, liveness, the
    // live snapshot generation, uptime. Answered inline on the
    // connection's reader thread — never queued behind the query pool.
    let health = client.health().expect("health probe");
    println!(
        "health: ready = {}, live = {}, generation = {}, uptime = {:.1}s",
        health.ready, health.live, health.generation, health.uptime_seconds,
    );
    // `Metrics` is what a Prometheus scraper polls: the full registry —
    // per-query-class latency quantiles, fold-in cache counters, the
    // transport's connection/frame counters — in text exposition
    // format. Here we print the per-class latency series.
    let metrics = client.metrics().expect("metrics scrape");
    println!("metrics scrape (cpd_serve_query_seconds series):");
    for line in metrics
        .lines()
        .filter(|l| l.starts_with("cpd_serve_query_seconds"))
    {
        println!("  {line}");
    }

    // `Traces` is what an engineer polls when a request was slow: the
    // server's kept traces (head-sampled plus tail-kept sheds, drops,
    // errors, and slow queries), fetched over the wire. Print the
    // fold-in cache miss — its span tree reaches down to the
    // individual Gibbs sweeps — next to the client's half of the same
    // trace, stitched by one trace id.
    let traces = client.traces().expect("traces fetch");
    if let Some(server_half) = traces
        .iter()
        .find(|t| t.spans.iter().any(|s| s.name == "fold_cache_miss"))
    {
        println!("server half of the cold fold-in (flamegraph view):");
        print!("{}", server_half.render_text());
        if let Some(client_half) = client
            .tracer()
            .store()
            .snapshot()
            .iter()
            .find(|t| t.trace_id == server_half.trace_id)
        {
            println!(
                "client half of the same trace {:#018x}:",
                client_half.trace_id
            );
            print!("{}", client_half.render_text());
        }
    }
    println!("server slow-query log (worst first):");
    print!("{}", tracer.store().render_slow_log(3));

    // ---- Graceful shutdown: drain, join, final report ---------------
    client.shutdown_server().expect("shutdown handshake");
    drop(client);
    let report = server.join();
    println!(
        "served {} queries over {} connection(s), {} frames in / {} out, \
         queue high-water {}, generation {} at shutdown",
        report.total_queries(),
        report.net.connections,
        report.net.frames_in,
        report.net.frames_out,
        report.queue_high_water,
        report.generation,
    );

    std::fs::remove_file(&snap_v1).ok();
    std::fs::remove_file(&snap_v2).ok();
}
