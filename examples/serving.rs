//! Serving quickstart: fit **offline**, snapshot the model, then serve
//! it **online** — load in a fresh "server" process, build the
//! [`ProfileIndex`], and answer a mixed query batch (including fold-in
//! profiling of a user who did not exist at training time).
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use cpd::prelude::*;
use std::sync::Arc;

fn main() {
    // ---- Offline: fit and snapshot (runs once, e.g. nightly) --------
    let gen = GenConfig::twitter_like(Scale::Tiny);
    let (graph, _truth) = generate(&gen);
    let config = CpdConfig {
        em_iters: 5,
        seed: 42,
        ..CpdConfig::experiment(gen.n_communities, gen.n_topics)
    };
    let fit = Cpd::new(config.clone()).expect("valid config").fit(&graph);
    let path = std::env::temp_dir().join("cpd-serving-example.cpd");
    // Crash-safe: written to a `.tmp` sibling, then renamed into place.
    cpd::core::io::save_model(&fit.model, &path).expect("snapshot");
    println!(
        "offline: fitted {}x{} model in {:.1}s, snapshot at {}",
        fit.model.n_communities(),
        fit.model.n_topics(),
        fit.diagnostics.total_seconds,
        path.display()
    );
    drop(fit); // The server below only sees the snapshot.

    // ---- Online: load, index, serve (runs forever) ------------------
    let model = cpd::core::io::load_model(&path).expect("load snapshot");
    let index = Arc::new(ProfileIndex::build(model, &config));
    let features = Arc::new(UserFeatures::compute(&graph));
    let runtime = ServeRuntime::new(
        Arc::clone(&index),
        Some(features),
        ServeOptions {
            workers: 4,
            // Tracing for the demo: an aggressively low slow-query
            // threshold so the tail-sampler keeps real entries, and a
            // small store. Production keeps the default threshold and
            // head-samples 1-in-N at the edge.
            trace: TraceConfig {
                sample_one_in: 1,
                slow_threshold: std::time::Duration::from_micros(200),
                ..TraceConfig::default()
            },
            ..ServeOptions::default()
        },
    )
    .expect("valid serve options");
    println!(
        "online: index over |C|={} |Z|={} |W|={}, {} workers",
        index.n_communities(),
        index.n_topics(),
        index.vocab_size(),
        runtime.workers()
    );

    // A batch mixing every query class. The fold-in request profiles a
    // brand-new user (two fresh documents + one friendship link) whom
    // the model has never seen — no retraining, no model writes.
    let query_word = graph.docs()[0].words[0];
    let new_user_docs = vec![graph.docs()[0].words.clone(), graph.docs()[1].words.clone()];
    let responses = runtime.submit_batch(vec![
        QueryRequest::RankCommunities {
            query: vec![query_word],
        },
        QueryRequest::TopWords { topic: 0, k: 5 },
        QueryRequest::UserProfile { user: UserId(0) },
        QueryRequest::FriendshipScore {
            u: UserId(0),
            v: UserId(1),
        },
        QueryRequest::FoldIn {
            item: FoldInItem::user(new_user_docs, vec![UserId(0)]),
            seed: 7,
        },
    ]);

    for (i, response) in responses.iter().enumerate() {
        match response {
            QueryResponse::Ranking(r) => {
                let head: Vec<String> = r
                    .iter()
                    .take(3)
                    .map(|&(id, s)| format!("{id}:{s:.3}"))
                    .collect();
                println!("  [{i}] ranking: {}", head.join(" "));
            }
            QueryResponse::Profile {
                membership,
                dominant,
            } => println!(
                "  [{i}] profile: dominant community c{dominant:02} (pi = {:.3})",
                membership[*dominant]
            ),
            QueryResponse::Score(s) => println!("  [{i}] link score: {s:.3}"),
            QueryResponse::FoldedIn(p) => println!(
                "  [{i}] fold-in: new user lands in c{:02} (pi = {:.3}), top topic T{}",
                p.dominant_community(),
                p.membership[p.dominant_community()],
                cpd::core::dominant_index(&p.topics),
            ),
            QueryResponse::Overloaded { retry_after_ms } => {
                println!("  [{i}] shed by admission control; retry after {retry_after_ms} ms")
            }
            QueryResponse::Error(e) => println!("  [{i}] error: {e}"),
        }
    }

    // Per-query-class latency, the serving analogue of FitDiagnostics:
    // histogram-backed, so each class reports tail quantiles, not just
    // a mean.
    let d = runtime.diagnostics();
    println!(
        "served {} queries in {} batch(es); per-class p50/p99 (us): \
         ranking {:.0}/{:.0}, top-words {:.0}/{:.0}, fold-in {:.0}/{:.0}",
        d.total_queries(),
        d.batches,
        d.ranking.p50_micros,
        d.ranking.p99_micros,
        d.top_words.p50_micros,
        d.top_words.p99_micros,
        d.fold_in.p50_micros,
        d.fold_in.p99_micros,
    );

    // ---- Hot-reload: a refreshed model lands, the pool keeps running.
    // (Here the "new" snapshot is a refit with another seed; in
    // production it is tonight's model build.) In-flight batches finish
    // on the old generation; everything after `reload` answers on the
    // new one. `runtime.index()` hands out an `Arc` of whichever
    // snapshot is live.
    let refit = Cpd::new(CpdConfig {
        seed: 43,
        ..config.clone()
    })
    .expect("valid config")
    .fit(&graph);
    cpd::core::io::save_model(&refit.model, &path).expect("snapshot v2");
    let generation = runtime.reload(&path).expect("hot-reload");
    println!(
        "hot-reload: generation {generation} live, |C| = {} communities",
        runtime.index().n_communities()
    );

    // The same registry a `cpd-server` would expose over the wire, as
    // Prometheus text — every serving series in one scrape. (Embedders
    // can pass their own registry via `ServeOptions::registry` to fold
    // trainer `cpd_fit_*` series into the same page.)
    println!("prometheus snapshot (query latency + generation series):");
    for line in runtime.prometheus_text().lines().filter(|l| {
        l.starts_with("cpd_serve_query_seconds{") || l.starts_with("cpd_serve_generation")
    }) {
        println!("  {line}");
    }

    // ---- Tracing: span-tree forensics for one request ---------------
    // Embedders mint traces straight from the runtime's tracer (over
    // TCP the *client* mints and the context rides the wire — see the
    // `server` example). The span tree below walks queue wait, the
    // per-class execute span, and — because this fold-in misses the
    // cache — the individual Gibbs sweeps.
    let tracer = Arc::clone(runtime.tracer());
    let trace = tracer
        .mint(std::time::Instant::now())
        .expect("sampling 1-in-1");
    let root = trace.start_span("example_request", 0);
    let traced = runtime.submit_batch_items(vec![BatchItem {
        trace: Some((trace.clone(), root.id())),
        ..BatchItem::new(QueryRequest::FoldIn {
            item: FoldInItem::doc(graph.docs()[2].words.clone()),
            seed: 99,
        })
    }]);
    assert!(matches!(traced[0], QueryResponse::FoldedIn(_)));
    root.finish();
    let done = tracer.complete(&trace, KeepReason::Sampled);
    println!("sampled trace (flamegraph view):");
    print!("{}", done.render_text());

    // The slow-query log, derived from the same store: every kept
    // trace ranked by duration, one headline per line.
    println!("slow-query log (worst first):");
    print!("{}", tracer.store().render_slow_log(3));

    // Shutdown returns the final counters instead of discarding them.
    let report = runtime.shutdown();
    println!(
        "final report: {} queries, generation {}, queue high-water {}",
        report.total_queries(),
        report.generation,
        report.queue_high_water,
    );
    std::fs::remove_file(&path).ok();
}
