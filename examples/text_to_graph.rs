//! End-to-end ingestion: raw text → preprocessing pipeline → social
//! graph → CPD fit. Demonstrates the full path a real dataset (tweets,
//! paper titles) would take, using the same preprocessing as the paper
//! (Sect. 6.1: tokenise, drop stop words, stem, keep content words,
//! drop documents with fewer than two words).
//!
//! ```sh
//! cargo run --release --example text_to_graph
//! ```

use cpd::prelude::*;

fn main() {
    // A miniature two-community corpus: networking people and database
    // people, each tweeting in their own vocabulary.
    let networking = [
        "Wireless sensor networks need better routing protocols",
        "Routing in wireless networks is an open problem",
        "Our new paper on network protocols and routing!",
        "Sensor networks and wireless routing at scale",
        "Protocol design for wireless sensor networks",
    ];
    let databases = [
        "Query optimization for relational databases",
        "Indexing strategies make database queries fast",
        "A survey of database query optimization",
        "Transactions and indexing in modern databases",
        "Fast queries need good database indexes",
    ];
    let mut raw = Vec::new();
    // Users 0-4 are networking researchers, 5-9 database researchers;
    // each posts two documents drawn from their community's corpus.
    for u in 0..10u32 {
        let pool: &[&str] = if u < 5 { &networking } else { &databases };
        for i in 0..2usize {
            raw.push(RawDocument {
                author: UserId(u),
                text: pool[(u as usize + i) % pool.len()].to_string(),
                timestamp: (u % 4),
            });
        }
    }

    // 1. Preprocess exactly as the paper does.
    let pipeline = Pipeline::new(PipelineConfig::default());
    let corpus = pipeline.process_corpus(&raw);
    println!(
        "pipeline: {} raw docs -> {} kept, vocabulary {} stems ({} dropped)",
        raw.len(),
        corpus.docs.len(),
        corpus.vocab.len(),
        corpus.dropped_docs
    );
    println!(
        "sample stems: {:?}",
        corpus
            .vocab
            .iter()
            .take(8)
            .map(|(w, _)| w)
            .collect::<Vec<_>>()
    );

    // 2. Assemble the social graph: friendships inside each clique, and
    //    a few retweets of each community's first post.
    let mut b = SocialGraphBuilder::new(10, corpus.vocab.len());
    let mut doc_ids = Vec::new();
    for d in &corpus.docs {
        doc_ids.push(b.add_document(d.clone()));
    }
    for grp in [0u32, 5] {
        for i in grp..grp + 5 {
            for j in grp..grp + 5 {
                if i != j {
                    b.add_friendship(UserId(i), UserId(j));
                }
            }
        }
    }
    // Retweets: user u rebroadcasts the previous user's first doc.
    let retweets: Vec<(usize, usize)> = vec![(2, 0), (4, 0), (6, 10), (8, 10)];
    for (src_doc, dst_doc) in retweets {
        if src_doc < doc_ids.len() && dst_doc < doc_ids.len() {
            b.add_diffusion(doc_ids[src_doc], doc_ids[dst_doc], 3);
        }
    }
    let graph = b.build().expect("valid graph");
    println!("graph: {}", graph.stats());

    // 3. Fit CPD with two communities and two topics.
    let config = CpdConfig {
        em_iters: 20,
        seed: 3,
        ..CpdConfig::experiment(2, 2)
    };
    let fit = Cpd::new(config).expect("valid config").fit(&graph);
    let labels = fit.model.dominant_communities();
    println!("\ndetected communities: {labels:?}");
    let networking_label = labels[0];
    let split_ok = labels[..5].iter().all(|&c| c == networking_label)
        && labels[5..].iter().all(|&c| c != networking_label);
    println!(
        "networking vs database researchers separated: {}",
        if split_ok { "yes" } else { "partially" }
    );

    // 4. What does each community talk about?
    for c in 0..2 {
        let z = fit.model.top_topics_of_community(c, 1)[0].0;
        let words: Vec<String> = fit
            .model
            .top_words(z, 4)
            .iter()
            .map(|&(w, _)| corpus.vocab.word(WordId(w as u32)).to_string())
            .collect();
        println!("community c{c} talks about: {}", words.join(", "));
    }
}
