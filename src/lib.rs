//! # cpd — *From Community Detection to Community Profiling*
//!
//! Umbrella crate for the full reproduction of Cai, Zheng, Zhu, Chang &
//! Huang (PVLDB 10(6), 2017): the CPD joint model, every substrate it
//! needs, the evaluation baselines and the experiment harness.
//!
//! The sub-crates are re-exported under short names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `cpd-core` | the CPD model, inference, applications |
//! | [`serve`] | `cpd-serve` | online serving: profile index, fold-in, query runtime, wire codec |
//! | [`server`] | `cpd-server` | TCP server + client for the serving runtime, hot-reload over the wire |
//! | [`telemetry`] | `cpd-telemetry` | lock-free metrics registry, latency histograms, Prometheus text |
//! | [`social_graph`] | `social-graph` | users, documents, links (Def. 1) |
//! | [`text_pipeline`] | `text-pipeline` | tokeniser, stemmer, vocabulary |
//! | [`topic_model`] | `topic-model` | collapsed-Gibbs LDA |
//! | [`polya_gamma`] | `polya-gamma` | exact `PG(b, z)` sampling |
//! | [`prob`] | `cpd-prob` | distributions and special functions |
//! | [`datagen`] | `cpd-datagen` | synthetic Twitter-/DBLP-like data |
//! | [`eval`] | `cpd-eval` | conductance, AUC, MAF@K, perplexity, NMI |
//! | [`baselines`] | `cpd-baselines` | PMTLM, WTM, CRM, COLD, +Agg |
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md`
//! for the paper-to-code map.

/// Deterministic fault injection (torn streams, chaos proxy, seeded
/// failpoints) — compiled in only with the off-by-default `chaos`
/// feature; the test suites depend on `cpd-chaos` directly.
#[cfg(feature = "chaos")]
pub use cpd_chaos as chaos;

pub use cpd_baselines as baselines;
pub use cpd_core as core;
pub use cpd_datagen as datagen;
pub use cpd_eval as eval;
pub use cpd_prob as prob;
pub use cpd_serve as serve;
pub use cpd_server as server;
pub use cpd_telemetry as telemetry;
pub use polya_gamma;
pub use social_graph;
pub use text_pipeline;
pub use topic_model;

/// The common imports for working with CPD.
pub mod prelude {
    pub use cpd_baselines::{DiffusionScorer, FriendshipScorer, Memberships};
    pub use cpd_core::{
        rank_communities, Cpd, CpdConfig, CpdModel, DiffusionPredictor, Eta, UserFeatures,
    };
    pub use cpd_datagen::{generate, GenConfig, Scale};
    pub use cpd_serve::{
        BatchItem, FaultHook, FoldIn, FoldInConfig, FoldInItem, HealthState, HealthStatus,
        IndexHandle, KeepReason, ProfileIndex, QueryRequest, QueryResponse, Registry,
        ServeDiagnostics, ServeOptions, ServeRuntime, Trace, TraceConfig, TraceContext, Tracer,
    };
    pub use cpd_server::{Client, ClientOptions, RetryPolicy, Server, ServerOptions};
    pub use social_graph::{DocId, Document, SocialGraph, SocialGraphBuilder, UserId, WordId};
    pub use text_pipeline::{Pipeline, PipelineConfig, RawDocument};
}
