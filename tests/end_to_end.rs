//! Cross-crate integration: the full path from raw text through the
//! preprocessing pipeline and graph construction to a fitted CPD model
//! and its three applications.

use cpd::prelude::*;

fn two_community_graph() -> (SocialGraph, text_pipeline::Vocabulary) {
    let topics_a = [
        "wireless sensor networks routing protocols",
        "routing wireless networks protocol design",
        "network protocols routing wireless",
    ];
    let topics_b = [
        "database query optimization indexing",
        "indexing databases queries transactions",
        "query optimization database indexes",
    ];
    let mut raw = Vec::new();
    for u in 0..12u32 {
        let pool: &[&str] = if u < 6 { &topics_a } else { &topics_b };
        for i in 0..3usize {
            raw.push(RawDocument {
                author: UserId(u),
                text: pool[(u as usize + i) % pool.len()].to_string(),
                timestamp: u % 3,
            });
        }
    }
    let corpus = Pipeline::new(PipelineConfig::default()).process_corpus(&raw);
    let mut b = SocialGraphBuilder::new(12, corpus.vocab.len());
    let mut ids = Vec::new();
    for d in &corpus.docs {
        ids.push(b.add_document(d.clone()));
    }
    for grp in [0u32, 6] {
        for i in grp..grp + 6 {
            for j in grp..grp + 6 {
                if i != j {
                    b.add_friendship(UserId(i), UserId(j));
                }
            }
        }
    }
    for (s, d) in [
        (3usize, 0usize),
        (6, 0),
        (9, 1),
        (21, 18),
        (24, 18),
        (27, 19),
    ] {
        if s < ids.len() && d < ids.len() && s != d {
            b.add_diffusion(ids[s], ids[d], 2);
        }
    }
    (b.build().unwrap(), corpus.vocab)
}

#[test]
fn raw_text_to_model_to_applications() {
    let (graph, vocab) = two_community_graph();
    assert!(vocab.len() > 5);
    let config = CpdConfig {
        em_iters: 25,
        seed: 12,
        ..CpdConfig::experiment(2, 2)
    };
    let fit = Cpd::new(config.clone()).unwrap().fit(&graph);
    let model = &fit.model;

    // Detection separates the two cliques.
    let labels = model.dominant_communities();
    let a = labels[0];
    let same_a = labels[..6].iter().filter(|&&c| c == a).count();
    let same_b = labels[6..].iter().filter(|&&c| c != a).count();
    assert!(
        same_a + same_b >= 10,
        "poor separation: {labels:?} ({same_a}+{same_b})"
    );

    // Ranking routes a networking stem to the networking community.
    let net_word = vocab.id_of("network").expect("stem present");
    let ranking = cpd::core::rank_communities(model, &[net_word]);
    let top = ranking[0].0;
    // The top community for "network" should be the majority label of
    // the networking users.
    let networking_majority = {
        let mut counts = [0usize; 2];
        for &c in &labels[..6] {
            counts[c] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .map(|(c, _)| c)
            .unwrap()
    };
    assert_eq!(top, networking_majority, "ranking {ranking:?}");

    // Diffusion prediction produces probabilities.
    let features = UserFeatures::compute(&graph);
    let predictor = DiffusionPredictor::new(model, &features, &config);
    for l in graph.diffusions() {
        let p = predictor.score(&graph, graph.doc(l.src).author, l.dst, l.at);
        assert!((0.0..=1.0).contains(&p));
    }

    // Visualisation exports well-formed artefacts.
    let dot = cpd::core::apps::visualization::to_dot(model, None, None);
    assert!(dot.starts_with("digraph"));
    let json = cpd::core::apps::visualization::to_json(model, Some(0));
    assert!(json.contains("\"edges\""));
}

#[test]
fn metrics_pipeline_spans_crates() {
    // datagen -> split -> core -> eval, all through the public APIs.
    let gen = GenConfig::twitter_like(Scale::Tiny);
    let (g, truth) = generate(&gen);
    let folds = social_graph::split::k_fold_indices(g.diffusions().len(), 3, 5);
    let holdout = social_graph::split::diffusion_holdout(&g, &folds, 0);
    let config = CpdConfig {
        em_iters: 8,
        seed: 5,
        ..CpdConfig::experiment(gen.n_communities, gen.n_topics)
    };
    let fit = Cpd::new(config.clone()).unwrap().fit(&holdout.train);
    let features = UserFeatures::compute(&holdout.train);
    let predictor = DiffusionPredictor::new(&fit.model, &features, &config);

    let pos: Vec<f64> = holdout
        .held_out
        .iter()
        .map(|&i| {
            let l = &g.diffusions()[i];
            predictor.score(&holdout.train, g.doc(l.src).author, l.dst, l.at)
        })
        .collect();
    use rand::Rng;
    let mut rng = cpd::prob::rng::seeded_rng(5);
    let neg: Vec<f64> = (0..pos.len())
        .map(|_| {
            let u = UserId(rng.gen_range(0..g.n_users()) as u32);
            let d = DocId(rng.gen_range(0..g.n_docs()) as u32);
            predictor.score(&holdout.train, u, d, 0)
        })
        .collect();
    let auc = cpd::eval::auc(&pos, &neg).unwrap();
    assert!(auc > 0.55, "held-out diffusion AUC {auc}");

    // Conductance and NMI run on the same memberships.
    let cond = cpd::eval::average_conductance(&g, &fit.model.pi, 5);
    assert!(cond.is_some());
    let nmi = cpd::eval::nmi(&fit.model.dominant_communities(), &truth.dominant_community);
    assert!(nmi > 0.1, "NMI {nmi}");
}

#[test]
fn baselines_and_cpd_share_interfaces() {
    use cpd::baselines::{CpdMethod, Crm, CrmConfig, DiffusionScorer, Memberships};
    let gen = GenConfig::twitter_like(Scale::Tiny);
    let (g, _) = generate(&gen);
    let cpd_fit = CpdMethod::fit(
        &g,
        CpdConfig {
            em_iters: 4,
            seed: 6,
            ..CpdConfig::experiment(4, 6)
        },
    )
    .unwrap();
    let crm = Crm::fit(&g, &CrmConfig::new(4));
    let l = &g.diffusions()[0];
    for scorer in [
        &cpd_fit as &dyn DiffusionScorer,
        &crm as &dyn DiffusionScorer,
    ] {
        let s = scorer.score_diffusion(&g, g.doc(l.src).author, l.dst, l.at);
        assert!(s.is_finite());
    }
    assert_eq!(cpd_fit.memberships().len(), g.n_users());
    assert_eq!(crm.memberships().len(), g.n_users());
}
