//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`sample_size`/`finish`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros — over a simple wall-clock harness:
//! per sample the closure runs enough iterations to cover a minimum
//! window, and the median/mean/min of the samples are printed and
//! appended to `BENCH_<group>.json` at the workspace root so runs can
//! be compared across commits.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench context, passed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            sample_size: self.sample_size,
            results: Vec::new(),
            _parent: self,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        let mut group = self.benchmark_group("ungrouped");
        group.sample_size = sample_size;
        group.bench_function(name, f);
        group.finish();
    }
}

/// One measured benchmark, serialised into the group's JSON report.
#[derive(Debug, Clone)]
struct BenchResult {
    name: String,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    results: Vec<BenchResult>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measure `f` under `name`.
    pub fn bench_function(&mut self, name: impl AsRef<str>, mut f: impl FnMut(&mut Bencher)) {
        let name = name.as_ref().to_string();
        // Calibrate: run once to size the per-sample iteration count so
        // each sample spans at least ~5 ms (or one iteration for slow
        // closures).
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let once = bencher.elapsed.max(Duration::from_nanos(1));
        let iters_per_sample = (Duration::from_millis(5).as_nanos() / once.as_nanos())
            .max(1)
            .min(u64::MAX as u128) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns[0];
        println!(
            "{}/{}: median {} mean {} min {} ({} samples x {} iters)",
            self.name,
            name,
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min),
            self.sample_size,
            iters_per_sample,
        );
        self.results.push(BenchResult {
            name,
            median_ns: median,
            mean_ns: mean,
            min_ns: min,
            samples: self.sample_size,
            iters_per_sample,
        });
    }

    /// Write the group's JSON report.
    pub fn finish(&mut self) {
        if self.results.is_empty() {
            return;
        }
        let sanitized: String = self
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = workspace_root().join(format!("BENCH_{sanitized}.json"));
        let mut rows = String::new();
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
                r.name.replace('"', "'"),
                r.median_ns,
                r.mean_ns,
                r.min_ns,
                r.samples,
                r.iters_per_sample,
            ));
        }
        let json = format!(
            "{{\n  \"group\": \"{}\",\n  \"benchmarks\": [\n{}\n  ]\n}}\n",
            self.name, rows
        );
        if let Ok(mut file) = std::fs::File::create(&path) {
            let _ = file.write_all(json.as_bytes());
        }
        self.results.clear();
    }
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Walk up from the current directory to the workspace root (the
/// topmost `Cargo.toml`), falling back to `.`.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut best: Option<PathBuf> = None;
    loop {
        if dir.join("Cargo.toml").is_file() {
            best = Some(dir.clone());
        }
        match dir.parent() {
            Some(p) => dir = p.to_path_buf(),
            None => break,
        }
    }
    best.unwrap_or_else(|| PathBuf::from("."))
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Timing handle passed to each bench closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for this sample's iteration budget and record wall time.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Group bench target functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("criterion_stub_selftest");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(group.results.len(), 1);
        assert!(group.results[0].median_ns >= 0.0);
        // Skip the JSON write in unit tests.
        group.results.clear();
    }
}
