//! `any::<T>()` support for the types the workspace asks for.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform strategy over all values of a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! arbitrary_impl {
    ($($t:ty => $gen:expr),+ $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                let f: fn(&mut StdRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )+};
}

arbitrary_impl! {
    bool => |rng| rng.gen::<bool>(),
    u32 => |rng| rng.gen::<u32>(),
    u64 => |rng| rng.gen::<u64>(),
    f64 => |rng| rng.gen::<f64>(),
}
