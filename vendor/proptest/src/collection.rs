//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length specification for [`vec()`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "vec strategy: empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn length_respects_size_range() {
        let mut rng = case_rng("collection::tests", 1);
        let s = vec(0u32..5, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let fixed = vec(0u32..5, 3usize);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }
}
