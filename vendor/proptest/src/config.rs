//! Runner configuration.

/// How a [`crate::proptest!`] block runs its cases.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the heavier fit-in-the-loop tests in
        // this workspace override per-block, and 48 keeps the rest quick
        // while still exercising a meaningful spread of inputs.
        Self { cases: 48 }
    }
}
