//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, range/tuple/`Just`/string-pattern strategies,
//! `prop::collection::vec`, `prop_flat_map`/`prop_map`, `any::<bool>()`
//! and the `prop_assert*`/`prop_assume!` macros. Cases are generated
//! from a deterministic per-test seed (override with `PROPTEST_SEED`);
//! there is no shrinking — a failure reports the attempt number so the
//! run can be replayed.

pub mod arbitrary;
pub mod collection;
pub mod config;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module-style access (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Entry point: a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..100, v in prop::collection::vec(0f64..1.0, 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::config::ProptestConfig = $cfg;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempt: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(20).saturating_add(100);
                while __accepted < __config.cases && __attempt < __max_attempts {
                    __attempt += 1;
                    let mut __rng = $crate::test_runner::case_rng(__test_name, __attempt);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    }
                }
                assert!(
                    __accepted >= __config.cases,
                    "proptest: too many rejected cases ({} accepted of {} wanted after {} attempts)",
                    __accepted,
                    __config.cases,
                    __attempt,
                );
            }
        )*
    };
}

/// Assert inside a property test (panics with the failing expression).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when `cond` does not hold (counts as rejected,
/// not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
