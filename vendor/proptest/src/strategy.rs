//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Derive a new strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Transform generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<I, F> {
    inner: I,
    f: F,
}

impl<I, S, F> Strategy for FlatMap<I, F>
where
    I: Strategy,
    S: Strategy,
    F: Fn(I::Value) -> S,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        let seed = self.inner.generate(rng);
        (self.f)(seed).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, T, F> Strategy for Map<I, F>
where
    I: Strategy,
    F: Fn(I::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

/// String literals act as generator patterns (a small regex subset; see
/// [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H)
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = case_rng("strategy::tests", 1);
        for _ in 0..200 {
            let x = (3u32..7).generate(&mut rng);
            assert!((3..7).contains(&x));
            let (a, b) = (0f64..1.0, 5usize..6).generate(&mut rng);
            assert!((0.0..1.0).contains(&a));
            assert_eq!(b, 5);
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let mut rng = case_rng("strategy::tests", 2);
        let s =
            (1usize..5).prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..10, n..n + 1)));
        for _ in 0..50 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }
}
