//! String generation from the small regex subset the workspace's tests
//! use as patterns: literal characters, `.` (any printable ASCII),
//! character classes like `[a-z0-9#]` (ranges, single characters and
//! spaces), each optionally followed by an `{m,n}` repetition.

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone)]
struct Unit {
    /// Candidate characters.
    class: Vec<char>,
    /// Repetition bounds (inclusive).
    min: usize,
    max: usize,
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..=0x7E).map(|b| b as char).collect()
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    for c in chars.by_ref() {
        match c {
            ']' => return out,
            '-' => {
                // Range like `a-z` when between two characters, literal
                // `-` otherwise; peek resolution happens on the next char.
                prev = Some('-');
            }
            c => {
                if prev == Some('-') && !out.is_empty() {
                    let lo = *out.last().expect("non-empty") as u32 + 1;
                    let hi = c as u32;
                    for u in lo..=hi {
                        if let Some(ch) = char::from_u32(u) {
                            out.push(ch);
                        }
                    }
                } else {
                    out.push(c);
                }
                prev = Some(c);
            }
        }
    }
    out
}

fn parse_repetition(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Option<(usize, usize)> {
    if chars.peek() != Some(&'{') {
        return None;
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    let (lo, hi) = match spec.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().unwrap_or(0),
            hi.trim().parse().unwrap_or(8),
        ),
        None => {
            let n = spec.trim().parse().unwrap_or(1);
            (n, n)
        }
    };
    Some((lo, hi))
}

fn parse(pattern: &str) -> Vec<Unit> {
    let mut chars = pattern.chars().peekable();
    let mut units = Vec::new();
    while let Some(c) = chars.next() {
        let class = match c {
            '.' => printable_ascii(),
            '[' => parse_class(&mut chars),
            '\\' => vec![chars.next().unwrap_or('\\')],
            c => vec![c],
        };
        let (min, max) = parse_repetition(&mut chars).unwrap_or((1, 1));
        units.push(Unit { class, min, max });
    }
    units
}

/// Generate one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for unit in parse(pattern) {
        if unit.class.is_empty() {
            continue;
        }
        let n = rng.gen_range(unit.min..=unit.max);
        for _ in 0..n {
            out.push(unit.class[rng.gen_range(0..unit.class.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn literal_patterns_reproduce_themselves() {
        let mut rng = case_rng("string::tests", 1);
        assert_eq!(generate_from_pattern("ly", &mut rng), "ly");
    }

    #[test]
    fn class_with_repetition_respects_alphabet_and_length() {
        let mut rng = case_rng("string::tests", 2);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z0-9#]{1,15}", &mut rng);
            assert!((1..=15).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '#'));
        }
    }

    #[test]
    fn dot_generates_printable_ascii() {
        let mut rng = case_rng("string::tests", 3);
        for _ in 0..100 {
            let s = generate_from_pattern(".{0,80}", &mut rng);
            assert!(s.chars().count() <= 80);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
