//! Per-case RNG derivation and case outcomes.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why a case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
}

/// FNV-1a, enough to decorrelate test names.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic RNG for one case of one test: seeded from the test's
/// full path, the attempt number, and the optional `PROPTEST_SEED`
/// environment override.
pub fn case_rng(test_name: &str, attempt: u32) -> StdRng {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5EED_CA5E);
    StdRng::seed_from_u64(
        base ^ fnv1a(test_name.as_bytes()) ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}
