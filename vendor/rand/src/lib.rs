//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of `rand`'s API it actually uses: `StdRng` (here a
//! xoshiro256++ generator seeded through SplitMix64), the `Rng`,
//! `RngCore` and `SeedableRng` traits, and `seq::SliceRandom::shuffle`.
//! The generated streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`, but every consumer in this workspace only relies on
//! determinism for a fixed seed, not on a specific stream.

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` (SplitMix64-expanded, as in upstream rand).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator (the upstream
/// `Standard` distribution, folded into a trait on the output type).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the plain remainder is avoided.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <f64 as Standard>::sample_standard(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (`f64` in `[0, 1)`, full-range
    /// integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            seen[x - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            let expect = n as f64 / 10.0;
            assert!(
                (c as f64 - expect).abs() < expect * 0.1,
                "counts {counts:?}"
            );
        }
    }
}
