//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// SplitMix64 step, used for seed expansion.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256++ (Blackman & Vigna).
/// Statistically strong, tiny state, `Clone + Send`, and deterministic
/// for a fixed seed — everything the repository needs from upstream
/// `StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        if s == [0; 4] {
            // xoshiro must not start from the all-zero state.
            s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x1234_5678, 0x9ABC_DEF0];
        }
        Self { s }
    }

    fn seed_from_u64(mut state: u64) -> Self {
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        Self { s }
    }
}
