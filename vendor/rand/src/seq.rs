//! Sequence helpers (`SliceRandom`).

use crate::{Rng, SampleRange};

/// Slice shuffling and selection.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher-Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((0..self.len()).sample_single(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(4));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
